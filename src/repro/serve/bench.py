"""Serving benchmark: identical open-loop load on DES, and on a live
deployment through real client sockets.

Extends :mod:`repro.live.crossval` from "same spec, both backends" to
"same *offered traffic*, one leg simulated and one leg served":

* **crossval leg** — one spec, seeded open-loop arrivals.  The DES leg
  consumes the workload stream in-process with admission enforced
  inside the input process; the serve leg starts a
  :class:`~repro.serve.Gateway` and has real client connections submit
  the *same* ``(arrival time, task)`` pairs over TCP, paced on the wall
  clock, with admission enforced at the gateway.  The admission queue
  is sized generously so neither leg sheds — both forward the full
  task set, so their committed ``(task, chunk) → digest`` outcomes
  must be identical (timing-independent), and both report client-side
  SLO percentiles over the same offered load.
* **overload leg** (serve-only) — the same traffic against a tiny
  admission queue and a drain rate far below the offered rate: the
  gateway's backpressure must demonstrably engage (deferrals and
  rejections observed by the clients).

``python -m repro serve bench`` drives both and prints/returns the
combined report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import BenchmarkError, ServeError
from repro.serve.frames import ADMITTED, DEFERRED, REJECTED

__all__ = ["ClientReport", "drive_open_loop", "ServeBenchReport", "serve_bench"]


# ---------------------------------------------------------- client driver
@dataclass
class ClientReport:
    """What the submitting clients observed, in simulated seconds."""

    offered: int = 0
    admitted: int = 0
    deferred: int = 0
    rejected: int = 0
    completed: int = 0
    #: client-observed end-to-end latency per completed task (sim s):
    #: wall clock from submit to TaskDone, divided by the time scale
    latencies: list = field(default_factory=list)
    #: sim seconds from the first submission to the last observed event
    horizon: float = 0.0

    def _pct(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        xs = sorted(self.latencies)
        idx = min(len(xs) - 1, int(round(q / 100.0 * (len(xs) - 1))))
        return xs[idx]

    def slo(self) -> dict:
        """JSON-scalar summary for ``ScenarioResult.client_slo``."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "deferred": self.deferred,
            "rejected": self.rejected,
            "completed": self.completed,
            "p50_latency": self._pct(50.0),
            "p99_latency": self._pct(99.0),
            #: completed tasks per sim second over the offered horizon —
            #: the client-side analogue of the result's record goodput
            "task_goodput": (
                self.completed / self.horizon if self.horizon > 0 else 0.0
            ),
        }


def drive_open_loop(
    address,
    items,
    time_scale: float,
    n_clients: int = 2,
    done_timeout: float = 30.0,
) -> ClientReport:
    """Offer ``items`` (``(sim arrival time, task)`` pairs) to a gateway
    through ``n_clients`` concurrent blocking clients.

    Arrivals are paced open-loop on the wall clock — task ``i`` is
    submitted at ``t0 + when_i * time_scale`` regardless of how earlier
    submissions fared — and split round-robin across the connections.
    After the last submission, each client waits up to ``done_timeout``
    wall seconds for completions of its non-rejected tasks.  Latencies
    are measured on the client's own clock: submit wall time →
    ``TaskDone`` wall time, converted to simulated seconds.
    """
    from repro.serve.client import Client

    items = list(items)
    if n_clients < 1:
        raise ServeError(f"n_clients must be >=1, got {n_clients}")
    n_clients = min(n_clients, max(1, len(items)))
    host, port = address
    lanes = [items[i::n_clients] for i in range(n_clients)]
    reports = [ClientReport() for _ in range(n_clients)]
    errors: list[BaseException] = []
    t0 = time.monotonic() + 0.05  # shared epoch: lanes pace consistently

    def lane(idx: int) -> None:
        report = reports[idx]
        try:
            with Client(host, port, client=f"bench-{idx}") as client:
                submitted_wall: dict[str, float] = {}
                expect = 0
                for when, task in lanes[idx]:
                    due = t0 + when * time_scale
                    delay = due - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    submitted_wall[task.task_id] = time.monotonic()
                    reply = client.submit(task)
                    report.offered += 1
                    if reply.status == ADMITTED:
                        report.admitted += 1
                        expect += 1
                    elif reply.status == DEFERRED:
                        report.deferred += 1
                        expect += 1
                    elif reply.status == REJECTED:
                        report.rejected += 1
                    else:  # pragma: no cover - protocol guarantees
                        raise ServeError(f"unknown verdict {reply.status!r}")
                last = time.monotonic()
                for done in client.collect_done(expect, done_timeout):
                    last = time.monotonic()
                    report.completed += 1
                    sub = submitted_wall.get(done.task_id)
                    if sub is not None:
                        report.latencies.append((last - sub) / time_scale)
                report.horizon = max(0.0, (last - t0) / time_scale)
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [
        threading.Thread(target=lane, args=(i,), name=f"bench-lane-{i}")
        for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    total = ClientReport()
    for r in reports:
        total.offered += r.offered
        total.admitted += r.admitted
        total.deferred += r.deferred
        total.rejected += r.rejected
        total.completed += r.completed
        total.latencies.extend(r.latencies)
        total.horizon = max(total.horizon, r.horizon)
    return total


# ------------------------------------------------------------- bench legs
@dataclass
class ServeBenchReport:
    """Crossval + overload outcome of one serving benchmark."""

    crossval: object  # CrossValReport
    des_result: object  # ScenarioResult (DES leg)
    serve_result: object  # ScenarioResult (serve leg, client_slo attached)
    overload_slo: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        backpressure_ok = (
            not self.overload_slo  # overload leg skipped
            or self.overload_slo.get("rejected", 0) > 0
        )
        return (
            self.crossval.ok
            and self.serve_result.client_slo.get("completed", 0) > 0
            and backpressure_ok
        )

    def summary(self) -> str:
        lines = [self.crossval.summary()]
        slo = self.serve_result.client_slo
        lines.append(
            f"client SLO (serve leg): {slo.get('completed', 0)}/"
            f"{slo.get('offered', 0)} completed, "
            f"p50={slo.get('p50_latency', 0.0):.3f}s "
            f"p99={slo.get('p99_latency', 0.0):.3f}s "
            f"goodput={slo.get('task_goodput', 0.0):.1f} tasks/s"
        )
        lines.append(
            f"DES SLO (same offered load): "
            f"p50={self.des_result.p50_latency:.3f}s "
            f"p99={self.des_result.p99_latency:.3f}s "
            f"goodput={self.des_result.goodput:.1f} rec/s"
        )
        ov = self.overload_slo
        lines.append(
            f"overload leg: {ov.get('deferred', 0)} deferred, "
            f"{ov.get('rejected', 0)} rejected of {ov.get('offered', 0)} "
            f"offered — backpressure "
            f"{'engaged' if ov.get('rejected', 0) else 'DID NOT ENGAGE'}"
        )
        return "\n".join(lines)


def _bench_spec(
    n: int,
    tasks: int,
    rate: float,
    seed: int,
    shards: int,
    tenants: int,
    config: tuple,
):
    from repro.api import DeploymentSpec

    return DeploymentSpec(
        workload="open_loop",
        workload_params=(
            ("n_tasks", tasks),
            ("rate", rate),
            ("process", "poisson"),
            ("seed", seed),
        ),
        n=n,
        seed=seed,
        shards=shards,
        tenants=tenants,
        sanitize=True,
        backend="live",
        config=config,
        label=f"serve-bench n={n} tasks={tasks} rate={rate}",
    )


def serve_bench(
    n: int = 4,
    tasks: int = 16,
    rate: float = 40.0,
    seed: int = 7,
    time_scale: float = 0.1,
    shards: int = 1,
    tenants: int = 2,
    n_clients: int = 2,
    overload: bool = True,
) -> ServeBenchReport:
    """Run the serving benchmark; see the module docstring.

    ``tenants`` must be >= 2: tenant tags are what routes tasks to
    shards identically on both backends and what makes output processes
    emit the per-task outcomes the gateway streams back.
    """
    from repro import api
    from repro.live.crossval import (
        CrossValReport,
        _diff_outcomes,
        commit_outcomes,
    )

    if tenants < 2:
        raise BenchmarkError(
            "serve_bench needs tenants >= 2 (tenant tags drive both "
            "shard routing and per-task completion streaming)"
        )
    # generous queue, drain faster than offered: admission is live at
    # the edge (bursts may defer) but nothing is shed — both legs
    # forward every task, so commit outcomes must coincide
    crossval_config = (
        ("admission_queue", max(64, tasks * 4)),
        ("admission_rate", rate * 4.0),
    )
    spec = _bench_spec(n, tasks, rate, seed, shards, tenants, crossval_config)

    # --- DES leg: same spec, admission enforced inside the IP
    des_result = api.run(spec.with_(backend="des", sinks=()))
    des_cluster = des_result.extra["cluster"]
    des_commits = {
        op.pid: commit_outcomes(op) for op in des_cluster.outputs
    }

    # --- serve leg: same arrivals offered through real client sockets
    items = spec.resolve_workload().tasks
    gateway = api.serve(spec, time_scale=time_scale)
    try:
        clients = drive_open_loop(
            gateway.address,
            items,
            time_scale,
            n_clients=n_clients,
            done_timeout=max(30.0, tasks * time_scale * 2.0 + 10.0),
        )
    finally:
        gateway.stop()
    serve_result = gateway.result(client_slo=clients.slo())
    live_commits = serve_result.extra["commits"]

    crossval = CrossValReport(
        spec_label=spec.label,
        des_commits=des_commits,
        live_commits=live_commits,
        des_violations=des_result.sanitizer_violations or 0,
        live_violations=serve_result.sanitizer_violations or 0,
        mismatches=_diff_outcomes(des_commits, live_commits),
    )

    # --- overload leg: tiny queue, drain rate far below offered load
    overload_slo: dict = {}
    if overload:
        ov_spec = _bench_spec(
            n,
            tasks,
            rate,
            seed,
            shards,
            tenants,
            (("admission_queue", 2), ("admission_rate", rate / 20.0)),
        )
        ov_gateway = api.serve(ov_spec, time_scale=time_scale)
        try:
            ov_clients = drive_open_loop(
                ov_gateway.address,
                ov_spec.resolve_workload().tasks,
                time_scale,
                n_clients=n_clients,
                done_timeout=10.0,
            )
        finally:
            ov_gateway.stop(drain=5.0)
        overload_slo = ov_clients.slo()

    return ServeBenchReport(
        crossval=crossval,
        des_result=des_result,
        serve_result=serve_result,
        overload_slo=overload_slo,
    )
