"""Serving layer: real client traffic over the live backend.

``repro.serve`` fronts a live OsirisBFT deployment with a TCP gateway
speaking length-prefixed codec-JSON frames:

* :class:`Gateway` — owns the deployment; accepts concurrent client
  connections, enforces the spec's admission policy at the edge with
  explicit backpressure verdicts, routes admitted tasks tenant-keyed
  across the input pipelines, and streams committed task outcomes back
  to the submitting client.  Built via :func:`repro.api.serve`.
* :class:`Client` / :class:`AsyncClient` — blocking and asyncio
  bindings for the frame protocol.
* :class:`AdmissionGate` — the gateway-side admission state machine
  (the input process's policy, enforced before tasks cross a process
  boundary).
* :func:`serve_bench` — seeded open-loop clients against both a DES run
  and a served live deployment: identical offered load, commit-set
  cross-validation, client-observed SLOs (``python -m repro serve
  bench``).
"""

from repro.serve.admission import AdmissionGate
from repro.serve.bench import (
    ClientReport,
    ServeBenchReport,
    drive_open_loop,
    serve_bench,
)
from repro.serve.client import AsyncClient, Client
from repro.serve.frames import (
    ADMITTED,
    DEFERRED,
    MAX_FRAME,
    REJECTED,
    ClientHello,
    ServerHello,
    SubmitReply,
    SubmitTask,
    TaskDone,
    pack_frame,
    recv_frame,
    register_frames,
    send_frame,
    unpack_payload,
)
from repro.serve.gateway import Gateway

__all__ = [
    "ADMITTED",
    "DEFERRED",
    "REJECTED",
    "MAX_FRAME",
    "AdmissionGate",
    "AsyncClient",
    "Client",
    "ClientHello",
    "ClientReport",
    "Gateway",
    "ServeBenchReport",
    "ServerHello",
    "SubmitReply",
    "SubmitTask",
    "TaskDone",
    "drive_open_loop",
    "pack_frame",
    "recv_frame",
    "register_frames",
    "send_frame",
    "serve_bench",
    "unpack_payload",
]
