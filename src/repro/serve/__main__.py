"""CLI for the serving layer: ``python -m repro serve <cmd>``.

``bench`` runs the DES-vs-served cross-validation under identical
seeded open-loop client load (plus an overload leg that must trip the
gateway's backpressure); ``run`` starts a gateway on a real port and
serves until the duration elapses.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=4, help="cluster size")
    parser.add_argument("--tasks", type=int, default=16)
    parser.add_argument(
        "--rate", type=float, default=40.0, help="offered load (tasks/s, sim)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.1,
        help="wall seconds per simulated second",
    )
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument(
        "--json", action="store_true", help="machine-readable outcome"
    )
    parser.add_argument(
        "--out", default="", help="write the JSON outcome to this path"
    )


def _emit(args: argparse.Namespace, payload: dict, text: str) -> None:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(text)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import serve_bench

    report = serve_bench(
        n=args.n,
        tasks=args.tasks,
        rate=args.rate,
        seed=args.seed,
        time_scale=args.time_scale,
        shards=args.shards,
        tenants=args.tenants,
        n_clients=args.clients,
        overload=not args.no_overload,
    )
    payload = {
        "ok": report.ok,
        "crossval_ok": report.crossval.ok,
        "mismatches": report.crossval.mismatches,
        "des": report.des_result.to_dict(),
        "serve": report.serve_result.to_dict(),
        "client_slo": report.serve_result.client_slo,
        "overload_slo": report.overload_slo,
    }
    _emit(args, payload, report.summary())
    return 0 if report.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    from repro import api

    config = []
    if args.admission_queue:
        config.append(("admission_queue", args.admission_queue))
    if args.admission_rate:
        config.append(("admission_rate", args.admission_rate))
    spec = api.DeploymentSpec(
        workload="open_loop",
        workload_params=(
            ("n_tasks", args.tasks),
            ("rate", args.rate),
            ("seed", args.seed),
        ),
        n=args.n,
        seed=args.seed,
        shards=args.shards,
        tenants=args.tenants,
        backend="live",
        sanitize=True,
        config=tuple(config),
    )
    gateway = api.serve(
        spec, host=args.host, port=args.port, time_scale=args.time_scale
    )
    host, port = gateway.address
    print(f"gateway serving on {host}:{port} (n={args.n}, "
          f"shards={args.shards}); duration={args.duration}s wall")
    try:
        time.sleep(args.duration)
    finally:
        gateway.stop()
    result = gateway.result()
    payload = result.to_dict()
    _emit(args, payload, result.row())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a live OsirisBFT deployment over TCP.",
    )
    subs = parser.add_subparsers(dest="cmd", required=True)

    bench = subs.add_parser(
        "bench",
        help="cross-validate DES vs served-live under identical "
        "open-loop client load",
    )
    _add_common(bench)
    bench.add_argument(
        "--clients", type=int, default=2, help="concurrent client connections"
    )
    bench.add_argument(
        "--no-overload",
        action="store_true",
        help="skip the overload/backpressure leg",
    )

    run = subs.add_parser("run", help="start a gateway and serve for a while")
    _add_common(run)
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0)
    run.add_argument(
        "--duration", type=float, default=10.0, help="wall seconds to serve"
    )
    run.add_argument("--admission-queue", type=int, default=0)
    run.add_argument("--admission-rate", type=float, default=0.0)

    args = parser.parse_args(argv)
    if args.cmd == "bench":
        return _cmd_bench(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
