"""The socket gateway: real client traffic into a live deployment.

A :class:`Gateway` owns one live OsirisBFT deployment
(:class:`~repro.live.runtime.LiveRuntime`) and a TCP listener speaking
the length-prefixed frame protocol of :mod:`repro.serve.frames`.  The
division of labour:

* **connection threads** (one per client) read ``SubmitTask`` frames,
  run the task through the gateway-side
  :class:`~repro.serve.admission.AdmissionGate`, and reply with the
  admission verdict synchronously — the client learns about shed load
  before the task touches the cluster;
* the **dispatcher thread** (inside the gate) forwards surviving tasks
  via :meth:`LiveRuntime.submit`, which routes tenant-keyed across the
  plan's input pipelines — sharded serving needs no client awareness;
* the **pump thread** services the runtime (child events onto the
  parent bus, campaign phases, child reaping) and re-emits the
  gateway's own connection/admission events; the completion sink hangs
  off the same bus and streams each committed
  :class:`~repro.obs.events.TaskOutcome` back to the submitting client
  as a ``TaskDone`` frame.

Admission knobs (``admission_queue``/``admission_rate``) are read from
the spec's config and *stripped from the plan* shipped to the children:
the policy is enforced exactly once, at the edge.  Shutdown is
graceful by default: stop accepting, drain the ingress queue, wait for
in-flight tasks to complete, then tear the runtime down (whose own
child-side grace drain flushes the stragglers).
"""

from __future__ import annotations

import dataclasses
import socket
import threading
import time
import queue as _queue
from typing import Any, Optional

from repro.errors import ServeError
from repro.obs.bus import Sink
from repro.obs.events import (
    CATEGORY_GATEWAY,
    CATEGORY_TASK,
    GatewayAdmission,
    GatewayClosed,
    GatewayConnected,
    TaskOutcome,
)
from repro.serve.admission import AdmissionGate
from repro.serve.frames import (
    REJECTED,
    ClientHello,
    ServerHello,
    SubmitReply,
    SubmitTask,
    TaskDone,
    recv_frame,
    register_frames,
    send_frame,
)

__all__ = ["Gateway"]

#: default wall seconds stop() waits for in-flight tasks to complete
_DRAIN_S = 15.0


class _CompletionSink(Sink):
    """Bus sink routing committed task outcomes back to their client."""

    categories = frozenset({CATEGORY_TASK})

    def __init__(self, gateway: "Gateway") -> None:
        self._gateway = gateway

    def handle(self, event) -> None:
        if isinstance(event, TaskOutcome):
            self._gateway._deliver_done(event)


class _Conn:
    """One accepted client connection (socket + serialized writes)."""

    def __init__(self, conn_id: str, sock: socket.socket, peer: str) -> None:
        self.id = conn_id
        self.sock = sock
        self.peer = peer
        self.submitted = 0
        self.open = True
        self._send_lock = threading.Lock()

    def send(self, value: Any) -> None:
        with self._send_lock:
            if not self.open:
                return
            try:
                send_frame(self.sock, value)
            except OSError:
                self.open = False

    def close(self) -> None:
        with self._send_lock:
            self.open = False
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self.sock.close()


class Gateway:
    """Serve one live deployment over TCP; see the module docstring.

    Built from a :class:`~repro.api.DeploymentSpec` with
    ``backend="live"`` (use :func:`repro.api.serve`).  Lifecycle:
    :meth:`start` → clients connect/submit → :meth:`stop`; usable as a
    context manager.  The spec's workload supplies the *application*
    (and the chunk-size calibration); its task stream is not consumed —
    traffic comes from the clients.
    """

    pid = "gateway"

    def __init__(
        self,
        spec,
        host: str = "127.0.0.1",
        port: int = 0,
        time_scale: float = 0.25,
    ) -> None:
        from repro.api import _osiris_config
        from repro.bench.scenarios import BENCH_BANDWIDTH
        from repro.live.runtime import LiveRuntime
        from repro.runtime.plan import plan_osiris_cluster

        if spec.system != "osiris":
            raise ServeError(
                f"the gateway serves OsirisBFT deployments only "
                f"(spec targets {spec.system!r})"
            )
        if spec.backend != "live":
            raise ServeError(
                "the gateway fronts the live backend; build the spec with "
                "backend='live' (or call repro.api.serve)"
            )
        register_frames()
        self.spec = spec
        self.host = host
        self._port = port
        self.time_scale = time_scale
        workload = spec.resolve_workload()
        cfg = _osiris_config(spec, workload)
        #: admission knobs move from the IP to the gateway: the plan's
        #: children run with them stripped so the policy applies once
        self.admission_queue = cfg.admission_queue
        self.admission_rate = cfg.admission_rate
        plan_cfg = dataclasses.replace(
            cfg, admission_queue=None, admission_rate=None
        )
        plan = plan_osiris_cluster(
            n_workers=spec.n,
            k=spec.k,
            seed=spec.seed,
            config=plan_cfg,
            bandwidth=(
                spec.bandwidth
                if spec.bandwidth is not None
                else BENCH_BANDWIDTH
            ),
            faults=spec.faults,
            sanitize=spec.sanitize,
            shards=spec.shards,
        )
        self.runtime = LiveRuntime(
            plan,
            workload.app,
            workload=None,
            sinks=spec.sinks,
            time_scale=time_scale,
        )
        self.runtime.bus.attach(_CompletionSink(self))
        self.gate = AdmissionGate(
            self.runtime.submit,
            queue_bound=self.admission_queue,
            rate=self.admission_rate,
            time_scale=time_scale,
        )
        self.address: Optional[tuple[str, int]] = None
        self._listener: Optional[socket.socket] = None
        self._conns: dict[str, _Conn] = {}
        self._owner: dict[str, _Conn] = {}
        self._completed: set[str] = set()
        self._lock = threading.Lock()
        self._events: _queue.Queue = _queue.Queue()
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []
        self._pump_thread: Optional[threading.Thread] = None
        self._next_conn = 0
        self._started = False
        self._report = None

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "Gateway":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        if self._report is None:
            self.stop()

    def start(self) -> "Gateway":
        """Fork the deployment, bind the listener, start serving."""
        if self._started:
            raise ServeError("a Gateway instance starts once")
        self._started = True
        # fork first: children must not inherit the listener socket
        self.runtime.start()
        try:
            self._listener = socket.create_server(
                (self.host, self._port), backlog=16
            )
            self.address = self._listener.getsockname()[:2]
            self.gate.start()
            self._pump_thread = threading.Thread(
                target=self._pump, name="serve-pump", daemon=True
            )
            self._pump_thread.start()
            acceptor = threading.Thread(
                target=self._accept, name="serve-accept", daemon=True
            )
            acceptor.start()
            self._threads.append(acceptor)
        except BaseException:
            self._stopping.set()
            self.runtime.stop()
            raise
        return self

    def stop(self, drain: float = _DRAIN_S):
        """Graceful shutdown; returns the runtime's
        :class:`~repro.live.runtime.LiveReport`.

        Stops accepting, lets the admission queue drain, waits up to
        ``drain`` wall seconds for every in-flight (non-rejected) task
        to complete, then shuts the runtime down — late completions
        surfacing during the runtime's own drain still reach clients.
        """
        if self._report is not None:
            return self._report
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.gate.close(drain_timeout=max(drain, 1.0))
        deadline = time.monotonic() + drain
        while time.monotonic() < deadline:
            with self._lock:
                if not set(self._owner) - self._completed:
                    break
            time.sleep(0.05)
        self._stopping.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=5.0)
        self._report = self.runtime.stop()
        for conn in list(self._conns.values()):
            conn.close()
        return self._report

    @property
    def metrics(self):
        return self.runtime.metrics

    def in_flight(self) -> int:
        """Tasks admitted or deferred whose completion has not streamed
        back yet."""
        with self._lock:
            return len(set(self._owner) - self._completed)

    def result(self, client_slo: Optional[dict] = None):
        """Fold the stopped deployment into a
        :class:`~repro.bench.scenarios.ScenarioResult` (same shape as
        ``run(spec)``), with gateway admission counters in ``extra``
        and the caller's client-observed SLO summary attached."""
        from repro.api import _fold_live_result

        if self._report is None:
            raise ServeError("result() wants a stopped gateway; call stop()")
        res = _fold_live_result(self.spec, self.runtime, self._report)
        res.extra["gateway_admitted"] = self.gate.admitted
        res.extra["gateway_deferred"] = self.gate.deferred
        res.extra["gateway_rejected"] = self.gate.rejected
        if client_slo:
            res.client_slo = dict(client_slo)
        return res

    # -------------------------------------------------------------- serving
    def _accept(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._lock:
                conn_id = f"c{self._next_conn}"
                self._next_conn += 1
            conn = _Conn(conn_id, sock, f"{addr[0]}:{addr[1]}")
            reader = threading.Thread(
                target=self._serve_conn,
                args=(conn,),
                name=f"serve-{conn_id}",
                daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _serve_conn(self, conn: _Conn) -> None:
        try:
            hello = recv_frame(conn.sock)
            if not isinstance(hello, ClientHello):
                raise ServeError(
                    f"expected ClientHello, got {type(hello).__name__}"
                )
            with self._lock:
                self._conns[conn.id] = conn
            self._emit(
                GatewayConnected(
                    time=self.runtime.now_sim,
                    pid=self.pid,
                    conn=conn.id,
                    peer=conn.peer,
                )
            )
            conn.send(
                ServerHello(
                    gateway=self.pid,
                    n=self.spec.n,
                    shards=self.spec.shards,
                    time_scale=self.time_scale,
                )
            )
            while True:
                frame = recv_frame(conn.sock)
                if frame is None:
                    return
                if not isinstance(frame, SubmitTask):
                    raise ServeError(
                        f"expected SubmitTask, got {type(frame).__name__}"
                    )
                self._submit(conn, frame.task)
        except ServeError:
            pass  # protocol violation or mid-frame close: drop the client
        except OSError:
            pass
        finally:
            conn.close()
            with self._lock:
                self._conns.pop(conn.id, None)
            self._emit(
                GatewayClosed(
                    time=self.runtime.now_sim,
                    pid=self.pid,
                    conn=conn.id,
                    submitted=conn.submitted,
                )
            )

    def _submit(self, conn: _Conn, task) -> None:
        from repro.core.tasks import Task

        if not isinstance(task, Task):
            raise ServeError(
                f"SubmitTask payload must be a Task, "
                f"got {type(task).__name__}"
            )
        if not task.tenant:
            # completions route back by TaskOutcome, which OPs emit only
            # for tenant-tagged tasks — give untagged traffic the
            # single-tenant default
            task = dataclasses.replace(task, tenant="t0")
        # register ownership before the gate can forward: a fast
        # completion must find its client
        with self._lock:
            self._owner[task.task_id] = conn
        status, depth = self.gate.offer(task)
        if status == REJECTED:
            with self._lock:
                self._owner.pop(task.task_id, None)
        conn.submitted += 1
        conn.send(
            SubmitReply(task_id=task.task_id, status=status, queue_depth=depth)
        )
        self._emit(
            GatewayAdmission(
                time=self.runtime.now_sim,
                pid=self.pid,
                task_id=task.task_id,
                tenant=task.tenant,
                status=status,
                queue_depth=depth,
            )
        )

    def _emit(self, event) -> None:
        """Queue a gateway event for the pump thread (the bus is only
        ever touched from there)."""
        self._events.put(event)

    def _deliver_done(self, event: TaskOutcome) -> None:
        with self._lock:
            self._completed.add(event.task_id)
            conn = self._owner.get(event.task_id)
        if conn is not None:
            conn.send(
                TaskDone(
                    task_id=event.task_id,
                    tenant=event.tenant,
                    completed_at=event.time,
                    submitted_at=event.submitted_at,
                )
            )

    def _pump(self) -> None:
        bus = self.runtime.bus
        while not self._stopping.is_set():
            self.runtime.poll(timeout=0.02)
            while True:
                try:
                    event = self._events.get_nowait()
                except _queue.Empty:
                    break
                if bus.wants(CATEGORY_GATEWAY):
                    bus.emit(event)
