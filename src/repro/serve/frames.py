"""Wire framing for the serve gateway: length-prefixed codec JSON.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 codec JSON (:mod:`repro.runtime.codec` — the same tagged
encoding every other process boundary in the system uses, so a
:class:`~repro.core.tasks.Task` crosses the client socket in exactly
the form it later crosses the parent→child queues).  Frames are bounded
by :data:`MAX_FRAME`; a peer announcing a larger payload is cut off
before a byte of it is read, and a connection that dies mid-frame
raises :class:`~repro.errors.ServeError` rather than yielding a
half-decoded value.

Conversation shape (client-initiated):

1. ``ClientHello`` → ``ServerHello`` (deployment shape + time scale);
2. any number of ``SubmitTask`` → ``SubmitReply`` exchanges, each reply
   carrying the gateway's admission verdict (:data:`ADMITTED` /
   :data:`DEFERRED` / :data:`REJECTED`) and the ingress queue depth;
3. ``TaskDone`` frames stream back asynchronously, interleaved with
   replies, as the output processes commit the client's tasks.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ServeError
from repro.runtime import codec

__all__ = [
    "ADMITTED",
    "DEFERRED",
    "REJECTED",
    "MAX_FRAME",
    "ClientHello",
    "ServerHello",
    "SubmitTask",
    "SubmitReply",
    "TaskDone",
    "register_frames",
    "pack_frame",
    "unpack_payload",
    "send_frame",
    "recv_frame",
    "read_frame_async",
]

#: Hard ceiling on one frame's payload (bytes).  Tasks are small — the
#: bound exists so a corrupt or hostile length prefix cannot make the
#: gateway allocate gigabytes.
MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")

#: Backpressure verdicts carried by :class:`SubmitReply`.
ADMITTED = "admitted"
DEFERRED = "deferred"
REJECTED = "rejected"


# ------------------------------------------------------------ frame types
@dataclass(slots=True)
class ClientHello:
    """First frame on every connection: identify the client."""

    client: str = "client"


@dataclass(slots=True)
class ServerHello:
    """Gateway's reply to :class:`ClientHello`: the deployment shape.

    ``time_scale`` lets the client convert wall-clock observations into
    simulated seconds (one sim second takes ``time_scale`` wall
    seconds), making client-side latency numbers comparable with
    DES-side SLO fields.
    """

    gateway: str
    n: int
    shards: int
    time_scale: float


@dataclass(slots=True)
class SubmitTask:
    """Client → gateway: one task for admission."""

    task: Any = None


@dataclass(slots=True)
class SubmitReply:
    """Gateway → client: the admission verdict for one submitted task.

    ``status`` is :data:`ADMITTED`, :data:`DEFERRED` (queued behind the
    drain rate — the task is still in flight) or :data:`REJECTED`
    (ingress queue full; the task was shed and will never complete).
    ``queue_depth`` is the gateway ingress queue occupancy after the
    verdict — the client's backpressure signal.
    """

    task_id: str
    status: str
    queue_depth: int = 0


@dataclass(slots=True)
class TaskDone:
    """Gateway → client: one of this client's tasks committed.

    ``completed_at``/``submitted_at`` are simulated seconds (OP outcome
    time and IP ingress time); the pipeline latency the *cluster*
    observed is their difference, while the client's own wall clock
    gives the end-to-end client-observed latency.
    """

    task_id: str
    tenant: str
    completed_at: float
    submitted_at: float


_FRAMES = (ClientHello, ServerHello, SubmitTask, SubmitReply, TaskDone)


def register_frames() -> None:
    """Install the frame vocabulary in the codec registry (idempotent)."""
    codec.register(*_FRAMES)


# ---------------------------------------------------------------- framing
def pack_frame(value: Any) -> bytes:
    """One wire frame: 4-byte big-endian length + codec-JSON payload."""
    register_frames()
    payload = codec.encode_json(value).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ServeError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte frame ceiling"
        )
    return _HEADER.pack(len(payload)) + payload


def unpack_payload(payload: bytes) -> Any:
    """Decode one frame payload (the bytes after the length prefix)."""
    register_frames()
    try:
        return codec.decode_json(payload.decode("utf-8"))
    except Exception as exc:
        raise ServeError(f"undecodable frame payload: {exc}") from exc


def _recv_exactly(sock: socket.socket, n: int, what: str) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF *before* the
    first byte, :class:`ServeError` on EOF mid-read (truncated frame)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ServeError(
                f"connection closed mid-frame ({got}/{n} bytes of {what})"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, value: Any) -> None:
    sock.sendall(pack_frame(value))


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Read one frame; ``None`` when the peer closed at a frame boundary."""
    header = _recv_exactly(sock, _HEADER.size, "header")
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServeError(
            f"peer announced a {length}-byte frame "
            f"(ceiling is {MAX_FRAME} bytes)"
        )
    payload = _recv_exactly(sock, length, "payload") if length else b""
    if payload is None:
        raise ServeError("connection closed mid-frame (0 payload bytes)")
    return unpack_payload(payload)


async def read_frame_async(reader) -> Optional[Any]:
    """Asyncio flavour of :func:`recv_frame` over a ``StreamReader``."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{_HEADER.size} bytes of header)"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServeError(
            f"peer announced a {length}-byte frame "
            f"(ceiling is {MAX_FRAME} bytes)"
        )
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ServeError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{length} bytes of payload)"
        ) from exc
    return unpack_payload(payload)
