"""Gateway-side admission control: the IP's policy, enforced at the edge.

The DES backend enforces ``OsirisConfig.admission_queue`` /
``admission_rate`` *inside* the input process
(:meth:`repro.core.input_output.InputProcess._admit`).  A serving
deployment moves the same policy to the gateway so the verdict can be
told to the submitting client *synchronously* — a ``REJECTED`` reply
arrives before the task would ever cross a process boundary, which is
the whole point of backpressure.  The input processes behind the
gateway then run with the admission knobs stripped, so the policy is
enforced exactly once.

Semantics mirror the IP's state machine:

* a full ingress queue (``queue_bound``) sheds the task — ``REJECTED``;
* a non-empty queue, or a drain tick pending from the rate limiter,
  defers the task — ``DEFERRED`` (it is queued and will be forwarded);
* otherwise the task is forwarded at the next drain — ``ADMITTED``.

The drain runs on one dispatcher thread: pop, forward, then (with a
rate set) sleep ``time_scale / rate`` wall seconds — the wall-clock
image of the IP's ``schedule(1.0 / rate, self._drain)`` tick.  With
neither knob set the gate is pass-through, matching the IP's legacy
immediate-forward path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

from repro.errors import ServeError
from repro.serve.frames import ADMITTED, DEFERRED, REJECTED

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Bounded, rate-drained ingress queue in front of a live runtime.

    ``forward`` is called on the dispatcher thread with each task that
    survives admission (typically ``LiveRuntime.submit``).  ``offer``
    may be called from any number of connection threads.
    """

    def __init__(
        self,
        forward: Callable,
        queue_bound: Optional[int] = None,
        rate: Optional[float] = None,
        time_scale: float = 1.0,
    ) -> None:
        if queue_bound is not None and queue_bound < 1:
            raise ServeError(
                f"admission queue bound must be >= 1, got {queue_bound}"
            )
        if rate is not None and rate <= 0:
            raise ServeError(f"admission rate must be positive, got {rate}")
        if time_scale <= 0:
            raise ServeError(f"time_scale must be positive, got {time_scale}")
        self._forward = forward
        self.queue_bound = queue_bound
        self.rate = rate
        self.time_scale = time_scale
        self.admitted = 0
        self.deferred = 0
        self.rejected = 0
        self.forwarded = 0
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._tick_pending = False  # rate tick outstanding (drain "busy")
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    @property
    def enforcing(self) -> bool:
        """Whether any admission knob is set (pass-through otherwise)."""
        return self.queue_bound is not None or self.rate is not None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._thread is not None:
            raise ServeError("admission gate already started")
        self._thread = threading.Thread(
            target=self._run, name="serve-admission", daemon=True
        )
        self._thread.start()

    def close(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain what is queued, stop the dispatcher."""
        with self._lock:
            self._closed = True
            self._work.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout)
            self._thread = None

    # -------------------------------------------------------------- ingress
    def offer(self, task) -> tuple[str, int]:
        """Admission verdict for one task: ``(status, queue_depth)``.

        Rejected tasks are dropped here; admitted/deferred tasks are
        queued for the dispatcher.  Thread-safe.
        """
        with self._lock:
            if self._closed:
                self.rejected += 1
                return REJECTED, len(self._queue)
            if not self.enforcing:
                # legacy shape: forward inline, no queue, no verdicts
                self.admitted += 1
                self.forwarded += 1
                forward = self._forward
            else:
                bound = self.queue_bound
                if bound is not None and len(self._queue) >= bound:
                    self.rejected += 1
                    return REJECTED, len(self._queue)
                status = (
                    DEFERRED
                    if (self._tick_pending or self._queue)
                    else ADMITTED
                )
                if status == DEFERRED:
                    self.deferred += 1
                else:
                    self.admitted += 1
                self._queue.append(task)
                self._work.notify()
                return status, len(self._queue)
        forward(task)
        return ADMITTED, 0

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def wait_empty(self, timeout: float) -> bool:
        """Block until the ingress queue drained (or ``timeout`` wall s)."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._queue and not self._tick_pending:
                    return True
            time.sleep(0.01)
        with self._lock:
            return not self._queue and not self._tick_pending

    # ----------------------------------------------------------- dispatcher
    def _run(self) -> None:
        import time

        wall_gap = (
            self.time_scale / self.rate if self.rate is not None else 0.0
        )
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._tick_pending = False
                    self._work.wait(timeout=0.1)
                if not self._queue and self._closed:
                    self._tick_pending = False
                    return
                task = self._queue.popleft()
                self._tick_pending = self.rate is not None
            self._forward(task)
            with self._lock:
                self.forwarded += 1
            if wall_gap > 0.0:
                time.sleep(wall_gap)
