"""Client bindings for the serve gateway: blocking and asyncio.

Both speak the frame protocol of :mod:`repro.serve.frames`.  Because
``TaskDone`` completions stream back interleaved with ``SubmitReply``
verdicts, each client demultiplexes its socket on a single reader
(thread or asyncio task) into two ordered queues: replies — exactly one
per submit, in submit order — and completions.  ``submit`` is therefore
synchronous-feeling (send, wait for the verdict) while completions are
consumed independently via ``next_done``.
"""

from __future__ import annotations

import queue as _queue
import socket
import threading
from typing import Optional

from repro.errors import ServeError
from repro.serve.frames import (
    ClientHello,
    ServerHello,
    SubmitReply,
    SubmitTask,
    TaskDone,
    read_frame_async,
    recv_frame,
    send_frame,
)

__all__ = ["Client", "AsyncClient"]

_CLOSED = object()  # queue sentinel: the reader saw EOF (or died)


class Client:
    """Blocking gateway client: one socket, one demux reader thread.

    Thread-safety: ``submit`` may be called from one thread at a time
    (replies are matched to submits by order); ``next_done`` may run
    concurrently from another thread.
    """

    def __init__(self, host: str, port: int, client: str = "client") -> None:
        self._sock = socket.create_connection((host, port))
        self._send_lock = threading.Lock()
        self._replies: _queue.Queue = _queue.Queue()
        self._done: _queue.Queue = _queue.Queue()
        self._closed = False
        send_frame(self._sock, ClientHello(client=client))
        hello = recv_frame(self._sock)
        if not isinstance(hello, ServerHello):
            raise ServeError(
                f"expected ServerHello, got {type(hello).__name__}"
            )
        #: the deployment shape the gateway announced
        self.hello: ServerHello = hello
        self._reader = threading.Thread(
            target=self._read_loop, name="serve-client-reader", daemon=True
        )
        self._reader.start()

    # -------------------------------------------------------------- lifecycle
    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    # ---------------------------------------------------------------- traffic
    def submit(self, task) -> SubmitReply:
        """Submit one task; blocks for the gateway's admission verdict."""
        with self._send_lock:
            send_frame(self._sock, SubmitTask(task=task))
        reply = self._replies.get()
        if reply is _CLOSED:
            raise ServeError("gateway closed the connection before replying")
        return reply

    def next_done(self, timeout: Optional[float] = None) -> Optional[TaskDone]:
        """Next streamed completion; ``None`` on timeout or closed peer."""
        try:
            done = self._done.get(timeout=timeout)
        except _queue.Empty:
            return None
        return None if done is _CLOSED else done

    def collect_done(self, count: int, timeout: float) -> list[TaskDone]:
        """Up to ``count`` completions within ``timeout`` wall seconds."""
        import time

        deadline = time.monotonic() + timeout
        out: list[TaskDone] = []
        while len(out) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            done = self.next_done(timeout=remaining)
            if done is None:
                break
            out.append(done)
        return out

    # ------------------------------------------------------------------ demux
    def _read_loop(self) -> None:
        try:
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    break
                if isinstance(frame, SubmitReply):
                    self._replies.put(frame)
                elif isinstance(frame, TaskDone):
                    self._done.put(frame)
                else:
                    raise ServeError(
                        f"unexpected frame from gateway: "
                        f"{type(frame).__name__}"
                    )
        except (ServeError, OSError):
            pass
        finally:
            self._replies.put(_CLOSED)
            self._done.put(_CLOSED)


class AsyncClient:
    """Asyncio gateway client; build with :meth:`connect`.

    Same demux contract as :class:`Client`: ``submit`` resolves with the
    in-order admission verdict, ``next_done`` with streamed completions.
    """

    def __init__(self, reader, writer, hello: ServerHello) -> None:
        import asyncio

        self._reader = reader
        self._writer = writer
        self.hello = hello
        self._replies: asyncio.Queue = asyncio.Queue()
        self._done: asyncio.Queue = asyncio.Queue()
        self._pump = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, client: str = "client"
    ) -> "AsyncClient":
        import asyncio

        from repro.serve.frames import pack_frame

        reader, writer = await asyncio.open_connection(host, port)
        writer.write(pack_frame(ClientHello(client=client)))
        await writer.drain()
        hello = await read_frame_async(reader)
        if not isinstance(hello, ServerHello):
            writer.close()
            raise ServeError(
                f"expected ServerHello, got {type(hello).__name__}"
            )
        return cls(reader, writer, hello)

    async def close(self) -> None:
        self._pump.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    async def submit(self, task) -> SubmitReply:
        from repro.serve.frames import pack_frame

        self._writer.write(pack_frame(SubmitTask(task=task)))
        await self._writer.drain()
        reply = await self._replies.get()
        if reply is _CLOSED:
            raise ServeError("gateway closed the connection before replying")
        return reply

    async def next_done(self) -> Optional[TaskDone]:
        done = await self._done.get()
        return None if done is _CLOSED else done

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame_async(self._reader)
                if frame is None:
                    break
                if isinstance(frame, SubmitReply):
                    await self._replies.put(frame)
                elif isinstance(frame, TaskDone):
                    await self._done.put(frame)
                else:
                    raise ServeError(
                        f"unexpected frame from gateway: "
                        f"{type(frame).__name__}"
                    )
        except (ServeError, OSError):
            pass
        finally:
            self._replies.put_nowait(_CLOSED)
            self._done.put_nowait(_CLOSED)
