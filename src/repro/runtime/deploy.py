"""Deployment builder: bind protocol cores to the DES backend.

Maps the paper's Sec 7 setup onto the substrate: ``n_workers`` worker
processes are split into ``k`` verifier sub-clusters of 2f+1 (the first
being VP_CO) and a pool of executors; one node acts as IP and one as OP
unless told otherwise.  The paper starts runs with |WP|/(2f+1) verifier
sub-clusters and lets role-switching converge; we default to the
converged ballpark ``max(1, n // (2 · (2f+1)))`` so short simulations
measure steady state, and expose ``k`` for the Fig 6d experiment that
studies convergence itself.

Every role is a pure :class:`~repro.runtime.core.ProtocolCore`; this
module is the only place where cores meet the simulator — each one is
wrapped in a :class:`~repro.runtime.des.DesHost` immediately after
construction (preserving the pre-refactor event-seq order of initial
timers) and registered on the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.core.api import VerifiableApplication
from repro.core.config import OsirisConfig
from repro.core.coordinator import Coordinator
from repro.core.executor import Executor
from repro.core.faults import ExecutorFault, OutputFault, VerifierFault
from repro.core.input_output import InputProcess, OutputProcess
from repro.core.metrics import MetricsHub
from repro.core.tasks import Task
from repro.core.verifier import Verifier
from repro.crypto.signatures import KeyRegistry
from repro.errors import ProtocolError
from repro.net.links import DEFAULT_BANDWIDTH, Network
from repro.net.partial_synchrony import SynchronyModel
from repro.net.topology import SubCluster, Topology
from repro.obs.bus import EventBus
from repro.runtime.des import DesHost
from repro.sim.kernel import Simulator

__all__ = ["OsirisCluster", "build_osiris_cluster", "default_cluster_count"]


@dataclass
class OsirisCluster:
    """Handles to a wired deployment (role lists hold the *cores*)."""

    sim: Simulator
    net: Network
    topo: Topology
    registry: KeyRegistry
    metrics: MetricsHub
    bus: EventBus
    config: OsirisConfig
    app: VerifiableApplication
    inputs: list[InputProcess]
    outputs: list[OutputProcess]
    executors: list[Executor]
    verifiers: list[Verifier] = field(default_factory=list)
    coordinators: list[Coordinator] = field(default_factory=list)
    hosts: dict[str, DesHost] = field(default_factory=dict)
    #: set when built with ``sanitize=True`` (a ``repro.check.Sanitizer``)
    sanitizer: Optional[object] = None
    #: set when built with a campaign (the installed
    #: ``repro.adversary.CampaignController``)
    campaign: Optional[object] = None
    #: set when built with a campaign (the attached
    #: ``repro.adversary.RecoverySink``)
    recovery: Optional[object] = None

    def start(self) -> None:
        """Begin streaming the workload."""
        for ip in self.inputs:
            ip.start()

    def run(self, until: float) -> None:
        """Advance simulated time (resumable)."""
        self.sim.run(until=until)

    def worker(self, pid: str):
        """Look up any role's protocol core by pid."""
        return self.hosts[pid].core

    def host(self, pid: str) -> DesHost:
        """The simulated node hosting ``pid`` (timers, CPU banks,
        replay capture flag)."""
        return self.hosts[pid]

    @property
    def all_verifiers(self) -> list[Verifier]:
        """Coordinators + plain verifiers."""
        return list(self.coordinators) + list(self.verifiers)


def default_cluster_count(n_workers: int, config: OsirisConfig) -> int:
    """Steady-state verifier sub-cluster count heuristic (see module doc)."""
    return max(1, n_workers // (2 * config.subcluster_size))


def build_osiris_cluster(
    app: VerifiableApplication,
    workload: Optional[Iterator[tuple[float, Task]]] = None,
    n_workers: int = 8,
    config: Optional[OsirisConfig] = None,
    k: Optional[int] = None,
    seed: int = 0,
    synchrony: Optional[SynchronyModel] = None,
    bandwidth: float = DEFAULT_BANDWIDTH,
    n_inputs: int = 1,
    n_outputs: int = 1,
    faults: Optional[object] = None,
    executor_faults: Optional[dict[str, ExecutorFault]] = None,
    verifier_faults: Optional[dict[str, VerifierFault]] = None,
    output_faults: Optional[dict[str, OutputFault]] = None,
    sinks: Iterable = (),
    capture: Iterable[str] = (),
    sanitize: bool = False,
) -> OsirisCluster:
    """Build and wire an OsirisBFT deployment.

    Parameters
    ----------
    app:
        The verifiable application.
    workload:
        Iterator of (time, Task) pairs fed by IP (may be None for manual
        driving in tests).
    n_workers:
        |WP| — worker processes, split into verifiers and executors.
    k:
        Verifier sub-cluster count (first cluster is VP_CO).  Default:
        ``max(1, n_workers // (2·(2f+1)))``.
    faults:
        Anything :func:`repro.api.normalize_faults` accepts — a legacy
        pid → strategy mapping, an adversary
        :class:`~repro.adversary.campaign.Campaign` (or its canonical
        JSON), or a pre-normalized plan.  A campaign is installed on the
        built cluster (phase timers scheduled, trigger sink and a
        :class:`~repro.adversary.recovery.RecoverySink` attached).
    executor_faults / verifier_faults / output_faults:
        Legacy per-role pid → strategy maps; merged into ``faults``
        (they win on pid collisions).
    sinks:
        Event sinks attached to the bus *before* any core is built, so
        they observe construction-time events too.
    capture:
        pids whose hosts record replay inputs/effects from birth (see
        :class:`~repro.runtime.des.DesHost`); combine with a
        ``CATEGORY_REPLAY``-filtered sink in ``sinks`` to produce a
        standalone re-runnable log.
    sanitize:
        Attach the :mod:`repro.check` substrate sanitizer from birth.
        Purely observational (the trace stays byte-identical); call
        ``cluster.sanitizer.audit(cluster)`` after the run for the
        post-run checks.
    """
    config = config or OsirisConfig()
    size = config.subcluster_size
    if k is None:
        k = default_cluster_count(n_workers, config)
    if k < 1:
        raise ProtocolError("need at least one verifier sub-cluster")
    if n_workers < k * size:
        raise ProtocolError(
            f"n_workers={n_workers} cannot host {k} sub-clusters of {size}"
        )
    n_exec = n_workers - k * size

    clusters = []
    vpid = 0
    for idx in range(k):
        members = tuple(f"v{vpid + j}" for j in range(size))
        clusters.append(SubCluster(index=idx, members=members, f=config.f))
        vpid += size
    topo = Topology(
        input_pids=tuple(f"ip{i}" for i in range(n_inputs)),
        output_pids=tuple(f"op{i}" for i in range(n_outputs)),
        executor_pids=tuple(f"e{i}" for i in range(n_exec)),
        verifier_clusters=tuple(clusters),
        f=config.f,
    )

    sim = Simulator(seed=seed)
    net = Network(
        sim, synchrony=synchrony or SynchronyModel(), bandwidth=bandwidth
    )
    registry = KeyRegistry()
    metrics = MetricsHub()
    sim.bus.attach(metrics)
    sanitizer = None
    if sanitize:
        from repro.check.sanitizer import Sanitizer  # lazy: optional layer

        sanitizer = Sanitizer(net)
        sanitizer.attach(sim.bus)
    for sink in sinks:
        sim.bus.attach(sink)
    from repro.api import normalize_faults  # lazy: api sits above runtime

    plan = normalize_faults(
        faults,
        executors=executor_faults,
        verifiers=verifier_faults,
        outputs=output_faults,
    )
    executor_faults = plan.executor_map()
    verifier_faults = plan.verifier_map()
    output_faults = plan.output_map()
    captured = frozenset(capture)
    hosts: dict[str, DesHost] = {}

    def deploy(core, cores: int) -> DesHost:
        host = DesHost(sim, net, core, cores=cores, capture=core.pid in captured)
        net.register(host)
        hosts[core.pid] = host
        return host

    coordinators: list[Coordinator] = []
    verifiers: list[Verifier] = []
    for cluster in topo.verifier_clusters:
        for pid in cluster.members:
            cls = Coordinator if cluster.index == 0 else Verifier
            core = cls(
                pid,
                topo,
                registry,
                registry.register(pid),
                app,
                config,
                cluster=cluster,
                fault=verifier_faults.get(pid),
            )
            deploy(core, config.cores_per_node)
            (coordinators if cluster.index == 0 else verifiers).append(core)

    executors: list[Executor] = []
    for pid in topo.executor_pids:
        core = Executor(
            pid,
            topo,
            registry,
            registry.register(pid),
            app,
            config,
            fault=executor_faults.get(pid),
        )
        deploy(core, config.cores_per_node)
        executors.append(core)

    inputs = []
    for i, pid in enumerate(topo.input_pids):
        ip = InputProcess(
            pid,
            topo,
            workload if (i == 0 and workload is not None) else iter(()),
        )
        deploy(ip, 2)
        inputs.append(ip)

    outputs = []
    for pid in topo.output_pids:
        op = OutputProcess(pid, topo, config, fault=output_faults.get(pid))
        deploy(op, 2)
        outputs.append(op)

    cluster = OsirisCluster(
        sim=sim,
        net=net,
        topo=topo,
        registry=registry,
        metrics=metrics,
        bus=sim.bus,
        config=config,
        app=app,
        inputs=inputs,
        outputs=outputs,
        executors=executors,
        verifiers=verifiers,
        coordinators=coordinators,
        hosts=hosts,
        sanitizer=sanitizer,
    )
    if plan.campaign is not None:
        from repro.adversary.engine import install_campaign
        from repro.adversary.recovery import RecoverySink

        # recovery first, so it observes even t=0 phase injections
        cluster.recovery = RecoverySink()
        sim.bus.attach(cluster.recovery)
        cluster.campaign = install_campaign(plan.campaign, cluster)
    return cluster
