"""Deployment builder: bind protocol cores to the DES backend.

Layout decisions (topology, role assignment, fault normalization) live
in :mod:`repro.runtime.plan`; this module instantiates a computed
:class:`~repro.runtime.plan.ClusterPlan` on the simulated substrate.
Every role is a pure :class:`~repro.runtime.core.ProtocolCore`; this is
the only place where cores meet the simulator — each one is wrapped in
a :class:`~repro.runtime.des.DesHost` immediately after construction
(preserving the pre-refactor event-seq order of initial timers) and
registered on the network.  The live OS-process backend
(:mod:`repro.live`) instantiates the *same* plan with one child process
per node instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.core.api import VerifiableApplication
from repro.core.config import OsirisConfig
from repro.core.coordinator import Coordinator
from repro.core.executor import Executor
from repro.core.faults import ExecutorFault, OutputFault, VerifierFault
from repro.core.input_output import InputProcess, OutputProcess
from repro.core.metrics import MetricsHub
from repro.core.tasks import Task
from repro.core.verifier import Verifier
from repro.crypto.signatures import KeyRegistry
from repro.net.links import DEFAULT_BANDWIDTH, Network
from repro.net.partial_synchrony import SynchronyModel
from repro.net.topology import Topology, shard_of_tenant
from repro.obs.bus import EventBus
from repro.runtime.des import DesHost
from repro.runtime.plan import (
    ClusterPlan,
    default_cluster_count,
    plan_osiris_cluster,
)
from repro.sim.kernel import Simulator

__all__ = [
    "OsirisCluster",
    "build_osiris_cluster",
    "instantiate_plan_des",
    "default_cluster_count",
]


@dataclass
class OsirisCluster:
    """Handles to a wired deployment (role lists hold the *cores*)."""

    sim: Simulator
    net: Network
    topo: Topology
    registry: KeyRegistry
    metrics: MetricsHub
    bus: EventBus
    config: OsirisConfig
    app: VerifiableApplication
    inputs: list[InputProcess]
    outputs: list[OutputProcess]
    executors: list[Executor]
    verifiers: list[Verifier] = field(default_factory=list)
    coordinators: list[Coordinator] = field(default_factory=list)
    hosts: dict[str, DesHost] = field(default_factory=dict)
    #: set when built with ``sanitize=True`` (a ``repro.check.Sanitizer``)
    sanitizer: Optional[object] = None
    #: set when built with a campaign (the installed
    #: ``repro.adversary.CampaignController``)
    campaign: Optional[object] = None
    #: set when built with a campaign (the attached
    #: ``repro.adversary.RecoverySink``)
    recovery: Optional[object] = None

    def start(self) -> None:
        """Begin streaming the workload."""
        for ip in self.inputs:
            ip.start()

    def run(self, until: float) -> None:
        """Advance simulated time (resumable)."""
        self.sim.run(until=until)

    def worker(self, pid: str):
        """Look up any role's protocol core by pid."""
        return self.hosts[pid].core

    def host(self, pid: str) -> DesHost:
        """The simulated node hosting ``pid`` (timers, CPU banks,
        replay capture flag)."""
        return self.hosts[pid]

    @property
    def all_verifiers(self) -> list[Verifier]:
        """Coordinators + plain verifiers."""
        return list(self.coordinators) + list(self.verifiers)


class _ShardDemux:
    """Split one lazy (time, Task) stream across per-shard input feeds.

    Each shard's InputProcess pulls from its own view; a pull that finds
    the shard's buffer empty advances the shared underlying iterator,
    parking tasks owned by *other* shards in their buffers.  Memory is
    bounded by the inter-shard skew of the arrival interleaving, not the
    stream length — the lazy-source contract survives sharding.
    """

    def __init__(self, source: Iterator[tuple[float, Task]], shards: int):
        from collections import deque

        self._source = source
        self._shards = shards
        self._buffers = [deque() for _ in range(shards)]

    def _pull_into(self, shard: int) -> bool:
        for when, task in self._source:
            owner = shard_of_tenant(task.tenant, self._shards)
            self._buffers[owner].append((when, task))
            if owner == shard:
                return True
        return False

    def stream(self, shard: int) -> Iterator[tuple[float, Task]]:
        buf = self._buffers[shard]
        while buf or self._pull_into(shard):
            yield buf.popleft()


def instantiate_plan_des(
    plan: ClusterPlan,
    app: VerifiableApplication,
    workload: Optional[Iterator[tuple[float, Task]]] = None,
    sinks: Iterable = (),
) -> OsirisCluster:
    """Instantiate a computed plan on the DES substrate."""
    sim = Simulator(seed=plan.seed)
    net = Network(sim, synchrony=plan.synchrony, bandwidth=plan.bandwidth)
    registry = KeyRegistry()
    metrics = MetricsHub()
    sim.bus.attach(metrics)
    sanitizer = None
    if plan.sanitize:
        from repro.check.sanitizer import Sanitizer  # lazy: optional layer

        sanitizer = Sanitizer(net)
        sanitizer.attach(sim.bus)
    for sink in sinks:
        sim.bus.attach(sink)

    hosts: dict[str, DesHost] = {}
    by_role: dict[str, list] = {
        "coordinator": [],
        "verifier": [],
        "executor": [],
        "input": [],
        "output": [],
    }
    primary_ip = plan.topo.input_pids[0] if plan.topo.input_pids else None
    feeds: dict[str, Iterator[tuple[float, Task]]] = {}
    if plan.topo.shards > 1 and workload is not None:
        demux = _ShardDemux(iter(workload), plan.topo.shards)
        for i, pid in enumerate(plan.topo.input_pids):
            feeds[pid] = demux.stream(i)
    elif primary_ip is not None and workload is not None:
        feeds[primary_ip] = workload
    for spec in plan.nodes:
        wl = feeds.get(spec.pid) if spec.role == "input" else None
        core = plan.make_core(spec, app, registry, workload=wl)
        host = DesHost(
            sim, net, core, cores=spec.cores, capture=spec.pid in plan.capture
        )
        net.register(host)
        hosts[spec.pid] = host
        by_role[spec.role].append(core)

    cluster = OsirisCluster(
        sim=sim,
        net=net,
        topo=plan.topo,
        registry=registry,
        metrics=metrics,
        bus=sim.bus,
        config=plan.config,
        app=app,
        inputs=by_role["input"],
        outputs=by_role["output"],
        executors=by_role["executor"],
        verifiers=by_role["verifier"],
        coordinators=by_role["coordinator"],
        hosts=hosts,
        sanitizer=sanitizer,
    )
    if plan.campaign is not None:
        from repro.adversary.engine import install_campaign
        from repro.adversary.recovery import RecoverySink

        # recovery first, so it observes even t=0 phase injections
        cluster.recovery = RecoverySink()
        sim.bus.attach(cluster.recovery)
        cluster.campaign = install_campaign(plan.campaign, cluster)
    return cluster


def build_osiris_cluster(
    app: VerifiableApplication,
    workload: Optional[Iterator[tuple[float, Task]]] = None,
    n_workers: int = 8,
    config: Optional[OsirisConfig] = None,
    k: Optional[int] = None,
    seed: int = 0,
    synchrony: Optional[SynchronyModel] = None,
    bandwidth: float = DEFAULT_BANDWIDTH,
    n_inputs: int = 1,
    n_outputs: int = 1,
    faults: Optional[object] = None,
    executor_faults: Optional[dict[str, ExecutorFault]] = None,
    verifier_faults: Optional[dict[str, VerifierFault]] = None,
    output_faults: Optional[dict[str, OutputFault]] = None,
    sinks: Iterable = (),
    capture: Iterable[str] = (),
    sanitize: bool = False,
    shards: int = 1,
) -> OsirisCluster:
    """Build and wire an OsirisBFT deployment on the DES backend.

    Parameters
    ----------
    app:
        The verifiable application.
    workload:
        Iterator of (time, Task) pairs fed by IP (may be None for manual
        driving in tests).
    n_workers:
        |WP| — worker processes, split into verifiers and executors.
    k:
        Verifier sub-cluster count (first cluster is VP_CO).  Default:
        ``max(1, n_workers // (2·(2f+1)))``.
    faults:
        Anything :func:`repro.api.normalize_faults` accepts — a legacy
        pid → strategy mapping, an adversary
        :class:`~repro.adversary.campaign.Campaign` (or its canonical
        JSON), or a pre-normalized plan.  A campaign is installed on the
        built cluster (phase timers scheduled, trigger sink and a
        :class:`~repro.adversary.recovery.RecoverySink` attached).
    executor_faults / verifier_faults / output_faults:
        Legacy per-role pid → strategy maps; merged into ``faults``
        (they win on pid collisions).
    sinks:
        Event sinks attached to the bus *before* any core is built, so
        they observe construction-time events too.
    capture:
        pids whose hosts record replay inputs/effects from birth (see
        :class:`~repro.runtime.des.DesHost`); combine with a
        ``CATEGORY_REPLAY``-filtered sink in ``sinks`` to produce a
        standalone re-runnable log.
    sanitize:
        Attach the :mod:`repro.check` substrate sanitizer from birth.
        Purely observational (the trace stays byte-identical); call
        ``cluster.sanitizer.audit(cluster)`` after the run for the
        post-run checks.
    shards:
        Tenant-routed IP/OP pipeline count over the shared verifier
        fleet; ``workload`` is demultiplexed across the per-shard
        inputs by each task's tenant key.  1 = legacy single pipeline.
    """
    plan = plan_osiris_cluster(
        n_workers=n_workers,
        config=config,
        k=k,
        seed=seed,
        synchrony=synchrony,
        bandwidth=bandwidth,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        faults=faults,
        executor_faults=executor_faults,
        verifier_faults=verifier_faults,
        output_faults=output_faults,
        capture=capture,
        sanitize=sanitize,
        shards=shards,
    )
    return instantiate_plan_des(plan, app, workload, sinks=sinks)
