"""Backend-agnostic deployment planning.

Splitting a deployment into *plan* and *instantiate* phases is what lets
the DES backend and the live OS-process backend share one construction
path: :func:`plan_osiris_cluster` computes everything that is pure
decision-making — topology and role layout, sub-cluster membership,
normalized fault assignment, per-node CPU-bank widths, capture set — and
returns a :class:`ClusterPlan`; each backend then walks
:attr:`ClusterPlan.nodes` **in order** and asks :meth:`ClusterPlan.make_core`
for the pure protocol core of each pid.

Two invariants matter:

* Node order is canonical (verifier clusters ascending with VP_CO first,
  then executors, inputs, outputs).  The DES backend binds hosts in this
  order, which fixes the event-seq numbering of the cores' birth timers
  — the golden trace fixtures pin it.
* ``make_core`` is deterministic given (plan, pid): key material comes
  from :class:`~repro.crypto.signatures.KeyRegistry`'s per-pid seeded
  derivation, so a live child process can rebuild its own registry and
  arrive at the same keys the parent (and every sibling) derives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.core.api import VerifiableApplication
from repro.core.config import OsirisConfig
from repro.core.coordinator import Coordinator
from repro.core.executor import Executor
from repro.core.faults import ExecutorFault, OutputFault, VerifierFault
from repro.core.input_output import InputProcess, OutputProcess
from repro.core.tasks import Task
from repro.core.verifier import Verifier
from repro.crypto.signatures import KeyRegistry
from repro.errors import ProtocolError
from repro.net.links import DEFAULT_BANDWIDTH
from repro.net.partial_synchrony import SynchronyModel
from repro.net.topology import SubCluster, Topology
from repro.runtime.core import ProtocolCore

__all__ = [
    "NodeSpec",
    "ClusterPlan",
    "plan_osiris_cluster",
    "default_cluster_count",
]


@dataclass(frozen=True)
class NodeSpec:
    """One node of the deployment: which role runs where, on how many
    (emulated or simulated) cores."""

    pid: str
    role: str  # coordinator | verifier | executor | input | output
    cores: int
    cluster_index: Optional[int] = None  # verifier roles only


@dataclass(frozen=True)
class ClusterPlan:
    """Everything both backends need to construct the same deployment."""

    topo: Topology
    config: OsirisConfig
    seed: int
    bandwidth: float
    synchrony: SynchronyModel
    nodes: tuple[NodeSpec, ...]
    executor_faults: dict[str, ExecutorFault] = field(default_factory=dict)
    verifier_faults: dict[str, VerifierFault] = field(default_factory=dict)
    output_faults: dict[str, OutputFault] = field(default_factory=dict)
    #: normalized adversary campaign (``repro.adversary.Campaign``), if any
    campaign: Optional[object] = None
    capture: frozenset = frozenset()
    sanitize: bool = False

    def node(self, pid: str) -> NodeSpec:
        for spec in self.nodes:
            if spec.pid == pid:
                return spec
        raise ProtocolError(f"no node {pid!r} in plan")

    def make_core(
        self,
        spec: NodeSpec,
        app: VerifiableApplication,
        registry: KeyRegistry,
        workload: Optional[Iterator[tuple[float, Task]]] = None,
    ) -> ProtocolCore:
        """Construct the pure core for one node.

        ``registry`` may be shared across all nodes (DES) or private to
        the calling process (live) — key derivation is per-pid
        deterministic either way.  ``workload`` is only consumed by the
        primary input role; see :func:`plan_osiris_cluster`.
        """
        topo, config = self.topo, self.config
        if spec.role in ("coordinator", "verifier"):
            cluster = topo.verifier_clusters[spec.cluster_index]
            cls = Coordinator if spec.role == "coordinator" else Verifier
            return cls(
                spec.pid,
                topo,
                registry,
                registry.register(spec.pid),
                app,
                config,
                cluster=cluster,
                fault=self.verifier_faults.get(spec.pid),
            )
        if spec.role == "executor":
            return Executor(
                spec.pid,
                topo,
                registry,
                registry.register(spec.pid),
                app,
                config,
                fault=self.executor_faults.get(spec.pid),
            )
        if spec.role == "input":
            return InputProcess(
                spec.pid,
                topo,
                workload if workload is not None else iter(()),
                config=config,
            )
        if spec.role == "output":
            return OutputProcess(
                spec.pid, topo, config, fault=self.output_faults.get(spec.pid)
            )
        raise ProtocolError(f"unknown role {spec.role!r}")  # pragma: no cover


def default_cluster_count(n_workers: int, config: OsirisConfig) -> int:
    """Steady-state verifier sub-cluster count heuristic: the paper
    starts at |WP|/(2f+1) clusters and role-switching converges near
    half; defaulting to the converged ballpark lets short simulations
    measure steady state (``k`` stays exposed for Fig 6d)."""
    return max(1, n_workers // (2 * config.subcluster_size))


def plan_osiris_cluster(
    n_workers: int = 8,
    config: Optional[OsirisConfig] = None,
    k: Optional[int] = None,
    seed: int = 0,
    synchrony: Optional[SynchronyModel] = None,
    bandwidth: float = DEFAULT_BANDWIDTH,
    n_inputs: int = 1,
    n_outputs: int = 1,
    faults: Optional[object] = None,
    executor_faults: Optional[dict[str, ExecutorFault]] = None,
    verifier_faults: Optional[dict[str, VerifierFault]] = None,
    output_faults: Optional[dict[str, OutputFault]] = None,
    capture: Iterable[str] = (),
    sanitize: bool = False,
    shards: int = 1,
) -> ClusterPlan:
    """Lay out an OsirisBFT deployment (no substrate objects created).

    Maps the paper's Sec 7 setup onto roles: ``n_workers`` worker
    processes split into ``k`` verifier sub-clusters of 2f+1 (the first
    being VP_CO) and a pool of executors; ``n_inputs``/``n_outputs``
    dedicated IP/OP nodes.  ``faults`` accepts anything
    :func:`repro.api.normalize_faults` does.

    ``shards`` > 1 expands the layout into that many tenant-routed IP/OP
    pipelines (pipeline i = ``ip{i}``/``op{i}``) sharing the verifier
    fleet and executor pool; it subsumes ``n_inputs``/``n_outputs``,
    which must stay at their defaults.
    """
    config = config or OsirisConfig()
    if shards < 1:
        raise ProtocolError(f"shards must be >= 1, got {shards}")
    if shards > 1:
        if n_inputs != 1 or n_outputs != 1:
            raise ProtocolError(
                "shards expands the pipeline layout itself; do not also "
                "pass n_inputs/n_outputs"
            )
        n_inputs = n_outputs = shards
    size = config.subcluster_size
    if k is None:
        k = default_cluster_count(n_workers, config)
    if k < 1:
        raise ProtocolError("need at least one verifier sub-cluster")
    if n_workers < k * size:
        raise ProtocolError(
            f"n_workers={n_workers} cannot host {k} sub-clusters of {size}"
        )
    n_exec = n_workers - k * size

    clusters = []
    vpid = 0
    for idx in range(k):
        members = tuple(f"v{vpid + j}" for j in range(size))
        clusters.append(SubCluster(index=idx, members=members, f=config.f))
        vpid += size
    topo = Topology(
        input_pids=tuple(f"ip{i}" for i in range(n_inputs)),
        output_pids=tuple(f"op{i}" for i in range(n_outputs)),
        executor_pids=tuple(f"e{i}" for i in range(n_exec)),
        verifier_clusters=tuple(clusters),
        f=config.f,
        shards=shards,
    )

    from repro.api import normalize_faults  # lazy: api sits above runtime

    plan = normalize_faults(
        faults,
        executors=executor_faults,
        verifiers=verifier_faults,
        outputs=output_faults,
    )

    nodes: list[NodeSpec] = []
    for cluster in topo.verifier_clusters:
        role = "coordinator" if cluster.index == 0 else "verifier"
        for pid in cluster.members:
            nodes.append(
                NodeSpec(
                    pid=pid,
                    role=role,
                    cores=config.cores_per_node,
                    cluster_index=cluster.index,
                )
            )
    for pid in topo.executor_pids:
        nodes.append(NodeSpec(pid=pid, role="executor", cores=config.cores_per_node))
    for pid in topo.input_pids:
        nodes.append(NodeSpec(pid=pid, role="input", cores=2))
    for pid in topo.output_pids:
        nodes.append(NodeSpec(pid=pid, role="output", cores=2))

    return ClusterPlan(
        topo=topo,
        config=config,
        seed=seed,
        bandwidth=bandwidth,
        synchrony=synchrony or SynchronyModel(),
        nodes=tuple(nodes),
        executor_faults=plan.executor_map(),
        verifier_faults=plan.verifier_map(),
        output_faults=plan.output_map(),
        campaign=plan.campaign,
        capture=frozenset(capture),
        sanitize=sanitize,
    )
