"""Pure protocol core: a state machine that speaks only in effects.

A core owns protocol state and handlers; it never imports the simulator
or the network.  Handlers are methods named ``on_<MessageClass>``,
collected into a dispatch table once at construction (no per-delivery
``getattr`` string lookup).  Sub-cores — the consensus engines — extend
the table through :meth:`ProtocolCore.register_handler` instead of
monkey-patching attributes onto their host.

The convenience methods (``send``, ``set_timer``, ``run_job``, …) are
thin constructors for :mod:`~repro.runtime.effects` objects handed to
the bound runtime; they are *the only* way a core touches the world.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.runtime.api import Runtime
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)

__all__ = ["ProtocolCore"]


class ProtocolCore:
    """Base class for every protocol role.

    Parameters
    ----------
    pid:
        Process identity; stamped on outgoing messages by the network
        backend and used to key timers/jobs in capture logs.
    """

    def __init__(self, pid: str) -> None:
        self.pid = pid
        self.crashed = False
        self.unhandled_messages = 0
        self._rt: Optional[Runtime] = None
        self._job_seq = 0
        self._sched_seq = 0
        handlers: dict[str, Callable] = {}
        for name in dir(type(self)):
            if name.startswith("on_") and name != "on_bind":
                handlers[name[3:]] = getattr(self, name)
        self._handlers = handlers

    # ------------------------------------------------------------- binding
    def bind(self, rt: Runtime) -> None:
        """Attach the backend; fires the :meth:`on_bind` hook (where
        cores arm their initial timers — never in ``__init__``)."""
        if self._rt is not None:
            raise SimulationError(f"core {self.pid} already bound")
        self._rt = rt
        self.on_bind()

    def on_bind(self) -> None:
        """Called once, immediately after the runtime is attached."""

    @property
    def rt(self) -> Runtime:
        if self._rt is None:
            raise SimulationError(f"core {self.pid} is not bound to a runtime")
        return self._rt

    # ------------------------------------------------------------ dispatch
    def register_handler(self, msg_type: str, fn: Callable) -> None:
        """Route deliveries of ``msg_type`` (class name) to ``fn`` —
        the composition point for consensus sub-cores."""
        self._handlers[msg_type] = fn

    def handlers(self) -> dict[str, Callable]:
        """The live dispatch table (message class name → handler)."""
        return dict(self._handlers)

    def handle(self, msg: Any) -> None:
        """Dispatch one delivered message; crashed cores drop inputs."""
        if self.crashed:
            return
        fn = self._handlers.get(type(msg).__name__)
        if fn is None:
            self.unhandled_messages += 1
            return
        fn(msg)

    # ------------------------------------------------------------- effects
    def perform(self, effect) -> None:
        self.rt.perform(effect)

    def send(self, dst: str, msg: Any) -> None:
        self.rt.perform(Send(dst, msg))

    def multicast(self, dsts, msg: Any) -> None:
        self.rt.perform(Multicast(tuple(dsts), msg))

    def neq_multicast(self, dsts, msg: Any) -> None:
        self.rt.perform(NeqMulticast(tuple(dsts), msg))

    def set_timer(self, name: str, delay: float, fn: Callable, *args) -> None:
        self.rt.perform(SetTimer(name, delay, fn, args))

    def cancel_timer(self, name: str) -> None:
        self.rt.perform(CancelTimer(name))

    def timer_armed(self, name: str) -> bool:
        return self.rt.timer_armed(name)

    def schedule(self, delay: float, fn: Callable, *args) -> int:
        self._sched_seq += 1
        self.rt.perform(Schedule(delay, fn, args, sched_id=self._sched_seq))
        return self._sched_seq

    def run_job(self, cost: float, fn: Callable, *args) -> int:
        self._job_seq += 1
        self.rt.perform(Job(cost, fn, args, job_id=self._job_seq))
        return self._job_seq

    def run_raw_job(self, cost: float, fn: Callable, *args, milestones=()) -> int:
        """Unguarded app-bank job with optional streaming milestones."""
        self._job_seq += 1
        self.rt.perform(
            Job(
                cost,
                fn,
                args,
                job_id=self._job_seq,
                guarded=False,
                milestones=tuple(milestones),
            )
        )
        return self._job_seq

    def run_ctrl_job(self, cost: float, fn: Callable, *args) -> int:
        self._job_seq += 1
        self.rt.perform(CtrlJob(cost, fn, args, job_id=self._job_seq))
        return self._job_seq

    def apply_update(self, cost: float) -> None:
        self.rt.perform(ApplyUpdate(cost))

    def emit(self, event: Any) -> None:
        self.rt.perform(Emit(event))

    def wants(self, category: str) -> bool:
        return self.rt.wants(category)

    # ----------------------------------------------------------- substrate
    @property
    def now(self) -> float:
        return self.rt.now

    @property
    def cpu(self):
        """App-compute bank view (``cores``/``busy_seconds``/…)."""
        return self.rt.app_cpu

    def crash(self) -> None:
        """Fail-stop this core: state freezes, pending timers die."""
        if self.crashed:
            return
        self.crashed = True
        self.rt.perform(Halt())
