"""In-memory backend for driving protocol cores in unit tests.

No Simulator, no Network: a :class:`TestRuntime` records every effect a
core performs and keeps just enough state (armed timers, pending jobs)
to let a test fire continuations by hand or drain them synchronously.
This is what makes adversarial input orderings *surgical*: a test
constructs a Verifier or Coordinator core, feeds hand-crafted messages
in any order, and asserts directly on state and on the typed effect
stream — without racing a whole simulated deployment.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.api import Runtime, StubCpu
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Effect,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)

__all__ = ["TestRuntime", "McRuntime", "describe_effect", "sent_messages"]


def describe_effect(effect: Effect) -> str:
    """One-line human description of a pending effect, for diagnostics.

    Names the effect type and whatever identifies its payload: message
    type and destination(s) for sends, continuation qualname and id for
    jobs/scheds, timer name for timers.
    """
    t = type(effect)
    if t is Send:
        return f"Send->{effect.dst}:{type(effect.msg).__name__}"
    if t in (Multicast, NeqMulticast):
        return (
            f"{t.__name__}->{','.join(effect.dsts)}"
            f":{type(effect.msg).__name__}"
        )
    if t is Job:
        fn = getattr(effect.fn, "__qualname__", repr(effect.fn))
        return f"Job#{effect.job_id}:{fn}(+{len(effect.milestones)}ms)"
    if t is CtrlJob:
        fn = getattr(effect.fn, "__qualname__", repr(effect.fn))
        return f"CtrlJob#{effect.job_id}:{fn}"
    if t is Schedule:
        fn = getattr(effect.fn, "__qualname__", repr(effect.fn))
        return f"Schedule#{effect.sched_id}:{fn}"
    if t is SetTimer:
        return f"SetTimer:{effect.name}"
    return t.__name__


class TestRuntime(Runtime):
    """Inert effect recorder with manual continuation control."""

    def __init__(
        self,
        core: ProtocolCore,
        cores: int = 7,
        wanted: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.core = core
        self.clock = 0.0
        self._wanted = wanted or (lambda category: True)
        self._cpu = StubCpu(cores)
        self.effects: list[Effect] = []
        self.timers: dict[str, SetTimer] = {}
        self.pending: list[Effect] = []  # jobs/ctrl-jobs/scheds, FIFO
        core.bind(self)

    # --------------------------------------------------- runtime interface
    @property
    def now(self) -> float:
        return self.clock

    def wants(self, category: str) -> bool:
        return self._wanted(category)

    def timer_armed(self, name: str) -> bool:
        return name in self.timers

    @property
    def app_cpu(self):
        return self._cpu

    def perform(self, effect) -> None:
        self.effects.append(effect)
        t = type(effect)
        if t is SetTimer:
            self.timers[effect.name] = effect
        elif t is CancelTimer:
            self.timers.pop(effect.name, None)
        elif t in (Job, CtrlJob, Schedule):
            if t is Job:
                self._cpu.busy_seconds += effect.cost
            self.pending.append(effect)
        elif t is ApplyUpdate:
            self._cpu.busy_seconds += effect.cost
        elif t is Halt:
            self.timers.clear()

    # ------------------------------------------------------- test controls
    def deliver(self, msg: Any, sender: Optional[str] = None) -> None:
        """Hand a message to the core, stamping ``sender`` like the
        authenticated transport would."""
        if sender is not None:
            msg.sender = sender
        self.core.handle(msg)

    def fire_timer(self, name: str) -> None:
        """Fire an armed timer immediately (crash-guarded, like the DES)."""
        effect = self.timers.pop(name)
        if not self.core.crashed:
            effect.fn(*effect.args)

    def drain(self, max_rounds: int = 1000) -> None:
        """Run queued jobs/scheds (and any they enqueue) to quiescence.

        Costs are ignored — the test backend has no clock to advance —
        but crash-guarding matches the DES: guarded work is skipped once
        the core crashed, while unguarded work still runs.
        """
        rounds = 0
        while self.pending:
            rounds += 1
            if rounds > max_rounds:
                undelivered = ", ".join(
                    describe_effect(e) for e in self.pending[:16]
                )
                if len(self.pending) > 16:
                    undelivered += f", ... and {len(self.pending) - 16} more"
                raise RuntimeError(
                    f"TestRuntime.drain did not quiesce after {max_rounds} "
                    f"rounds; core {self.core.pid!r} still has "
                    f"{len(self.pending)} undelivered effect(s): "
                    f"[{undelivered}]"
                )
            effect = self.pending.pop(0)
            if type(effect) is Job:
                for _, fn, args in effect.milestones:
                    fn(*args)
                if effect.guarded and self.core.crashed:
                    continue
                effect.fn(*effect.args)
            elif type(effect) is CtrlJob:
                if self.core.crashed:
                    continue
                effect.fn(*effect.args)
            else:  # Schedule — never guarded
                effect.fn(*effect.args)

    # ------------------------------------------------------------ querying
    def of(self, effect_type: type) -> list[Effect]:
        """Recorded effects of one concrete type, in perform order."""
        return [e for e in self.effects if type(e) is effect_type]

    def clear(self) -> None:
        self.effects.clear()

    def emitted(self, event_type: type) -> list[Any]:
        """Trace events the core emitted, filtered by event class."""
        return [
            e.event
            for e in self.effects
            if type(e) is Emit and type(e.event) is event_type
        ]


class McRuntime(Runtime):
    """Model-checking sibling of :class:`TestRuntime`.

    Where ``TestRuntime`` keeps a private FIFO of pending effects for a
    single core, an ``McRuntime`` routes every send and every queued
    job/sched of its core into an explorer-owned *world* (duck-typed:
    ``enqueue_send(src, dst, msg, neq)`` and ``enqueue_local(src,
    effect)``) — the world treats that shared pending frontier as a
    choice point and decides which action happens next.  Execution
    semantics (milestones first, crash-guarding, timer crash-guard)
    match ``TestRuntime.drain`` and the DES exactly; only the *order*
    is external.

    ``wants`` is always False: trace events never feed back into core
    state, and dropping them keeps snapshots small and states
    comparable across schedules.
    """

    def __init__(self, core: ProtocolCore, world, cores: int = 7) -> None:
        self.core = core
        self.world = world
        self._cpu = StubCpu(cores)
        self.timers: dict[str, SetTimer] = {}
        core.bind(self)

    # --------------------------------------------------- runtime interface
    @property
    def now(self) -> float:
        return self.world.clock

    def wants(self, category: str) -> bool:
        return False

    def timer_armed(self, name: str) -> bool:
        return name in self.timers

    @property
    def app_cpu(self):
        return self._cpu

    def perform(self, effect) -> None:
        t = type(effect)
        pid = self.core.pid
        if t is Send:
            self.world.enqueue_send(pid, effect.dst, effect.msg, False)
        elif t is Multicast:
            for dst in effect.dsts:
                self.world.enqueue_send(pid, dst, effect.msg, False)
        elif t is NeqMulticast:
            for dst in effect.dsts:
                self.world.enqueue_send(pid, dst, effect.msg, True)
        elif t is SetTimer:
            self.timers[effect.name] = effect
        elif t is CancelTimer:
            self.timers.pop(effect.name, None)
        elif t in (Job, CtrlJob, Schedule):
            if t is Job:
                self._cpu.busy_seconds += effect.cost
            self.world.enqueue_local(pid, effect)
        elif t is ApplyUpdate:
            self._cpu.busy_seconds += effect.cost
        elif t is Halt:
            self.timers.clear()
        # Emit is dropped: wants() is False and events have no feedback

    # ------------------------------------------------- execution (by world)
    def deliver(self, msg: Any, sender: str, neq: bool = False) -> None:
        """Deliver one message, stamping sender/neq like the transport."""
        msg.sender = sender
        if neq:
            msg._neq = True
        elif getattr(msg, "_neq", False):
            msg._neq = False
        self.core.handle(msg)

    def run_local(self, effect) -> None:
        """Run one queued job/ctrl-job/sched, TestRuntime.drain-style."""
        if type(effect) is Job:
            for _, fn, args in effect.milestones:
                fn(*args)
            if effect.guarded and self.core.crashed:
                return
            effect.fn(*effect.args)
        elif type(effect) is CtrlJob:
            if self.core.crashed:
                return
            effect.fn(*effect.args)
        else:  # Schedule — never guarded
            effect.fn(*effect.args)

    def fire_timer(self, name: str) -> None:
        effect = self.timers.pop(name)
        if not self.core.crashed:
            effect.fn(*effect.args)


def sent_messages(rt: TestRuntime, msg_type: Optional[type] = None) -> list:
    """All messages the core sent (point-to-point or multicast), in
    order, optionally filtered by message class."""
    out = []
    for effect in rt.effects:
        if type(effect) in (Send, Multicast, NeqMulticast):
            if msg_type is None or type(effect.msg) is msg_type:
                out.append(effect.msg)
    return out
