"""Host-side effect interpretation shared by every *executing* backend.

A backend that actually runs a :class:`~repro.runtime.core.ProtocolCore`
(the DES backend, the live OS-process backend) has to do the same three
things regardless of its substrate: dispatch each performed effect to a
substrate primitive, wrap callback-carrying effects in continuation
thunks that honour replay capture, and feed delivered messages into the
core.  :class:`EffectInterpreter` owns exactly that shared skeleton; a
concrete host supplies the primitives (``_do_send`` … ``_do_halt``) that
map onto its substrate — simulated NICs and CPU banks for
:class:`~repro.runtime.des.DesHost`, multiprocessing queues and
wall-clock timers for :class:`~repro.live.host.LiveHost`.

The dispatch order and the capture hook placement are part of the byte-
identical-trace contract: capture emission happens *before* the
primitive runs, and primitives execute synchronously in perform order,
exactly as the pre-extraction inline ``DesHost.perform`` did (pinned by
the golden fig5/turncoat fixtures).
"""

from __future__ import annotations

from typing import Any

from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)
from repro.runtime.replay import encode_message

__all__ = ["EffectInterpreter"]


class EffectInterpreter:
    """Effect dispatch + capture + continuation plumbing for real hosts.

    Subclasses set :attr:`core` and :attr:`capture` and implement the
    ``_do_*`` primitives plus the two capture emitters
    (:meth:`_capture_effect`, :meth:`_record_input`).

    Dispatch is a per-host table of bound primitives built lazily from
    :data:`_PRIMITIVES` on first use of each effect type — one dict lookup
    per performed effect instead of an 11-arm type chain, with subclass
    overrides picked up by the late binding.
    """

    core: ProtocolCore
    #: opt-in replay capture: when set, every performed effect and every
    #: consumed input is published through the capture emitters.
    capture: bool = False

    #: effect type → host primitive name (the closed effect vocabulary)
    _PRIMITIVES = {
        Send: "_do_send",
        Multicast: "_do_multicast",
        NeqMulticast: "_do_neq_multicast",
        SetTimer: "_do_set_timer",
        CancelTimer: "_do_cancel_timer",
        Schedule: "_do_schedule",
        Job: "_do_job",
        CtrlJob: "_do_ctrl_job",
        ApplyUpdate: "_do_apply_update",
        Emit: "_do_emit",
        Halt: "_do_halt",
    }

    # ------------------------------------------------------------ dispatch
    def interpret(self, effect) -> None:
        """Realise one effect through the host's substrate primitives."""
        if self.capture:
            self._capture_effect(effect)
        try:
            fn = self._dispatch[type(effect)]
        except (AttributeError, KeyError):
            fn = self._bind_primitive(type(effect))
        fn(effect)

    def _bind_primitive(self, effect_type):
        """Bind (and cache) the primitive for one effect type."""
        name = self._PRIMITIVES.get(effect_type)
        if name is None:  # pragma: no cover - vocabulary is closed
            raise TypeError(f"unknown effect type {effect_type!r}")
        table = getattr(self, "_dispatch", None)
        if table is None:
            table = self._dispatch = {}
        fn = table[effect_type] = getattr(self, name)
        return fn

    # ------------------------------------------------------ capture hooks
    def _capture_effect(self, effect) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _record_input(self, kind: str, ref: str) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------- continuations
    def _fire_timer(self, effect: SetTimer) -> None:
        if self.capture:
            self._record_input("timer", effect.name)
        effect.fn(*effect.args)

    def _fire_sched(self, effect: Schedule) -> None:
        if self.capture:
            self._record_input("sched", str(effect.sched_id))
        effect.fn(*effect.args)

    def _job_thunk(self, effect):
        def run() -> None:
            if self.capture:
                self._record_input("job", str(effect.job_id))
            effect.fn(*effect.args)

        return run

    def _fire_milestone(self, effect: Job, idx: int) -> None:
        if self.capture:
            self._record_input("milestone", f"{effect.job_id}:{idx}")
        _, fn, args = effect.milestones[idx]
        fn(*args)

    # ------------------------------------------------------------ delivery
    def _deliver_to_core(self, msg: Any) -> None:
        """Feed one delivered message into the core (capture included);
        the host's own crash gating happens *before* this call."""
        if self.capture:
            self._record_input("msg", encode_message(msg))
        self.core.handle(msg)
        self.unhandled_messages = self.core.unhandled_messages

    # ---------------------------------------------------------- primitives
    def _do_send(self, effect: Send) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_multicast(self, effect: Multicast) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_neq_multicast(self, effect: NeqMulticast) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_set_timer(self, effect: SetTimer) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_cancel_timer(self, effect: CancelTimer) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_schedule(self, effect: Schedule) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_job(self, effect: Job) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_ctrl_job(self, effect: CtrlJob) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_apply_update(self, effect: ApplyUpdate) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_emit(self, effect: Emit) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_halt(self, effect: Halt) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
