"""Sans-IO runtime layer: typed effects, pure protocol cores, backends.

Every protocol role (coordinator, verifier, executor, IP/OP, the
consensus engines and both baselines) is a :class:`ProtocolCore`: a pure
state machine whose handlers emit typed :mod:`~repro.runtime.effects`
instead of touching the simulator or the network directly.  A
:class:`Runtime` backend interprets those effects:

* :class:`~repro.runtime.des.DesHost` — the discrete-event backend used
  by every deployment builder; interprets effects exactly as the
  pre-refactor inline calls did (bit-identical traces).
* :class:`~repro.runtime.testing.TestRuntime` — an inert in-memory
  backend for driving cores directly in unit tests, with no Simulator
  and no Network constructed.
* :class:`~repro.runtime.replay.ReplayRuntime` — re-runs a single core
  standalone from a bus-captured inbox (post-mortem debugging).

The deployment builder for the full OsirisBFT cluster lives in
:mod:`repro.runtime.deploy`; ``repro.core.cluster`` forwards to it.
"""

from repro.runtime.api import Runtime, StubCpu
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Effect,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)

__all__ = [
    "Runtime",
    "StubCpu",
    "ProtocolCore",
    "Effect",
    "Send",
    "Multicast",
    "NeqMulticast",
    "SetTimer",
    "CancelTimer",
    "Schedule",
    "Job",
    "CtrlJob",
    "ApplyUpdate",
    "Emit",
    "Halt",
]
