"""Canonical JSON wire format for protocol messages and control types.

Anything that crosses a process boundary goes through this module: the
replay capture logs (a captured inbox must survive a JSONL file → later
debugging session) and every queue hop of the live OS-process backend
(:mod:`repro.live`) — protocol messages, forwarded trace events and the
parent↔child control envelopes.  Values are encoded structurally: every
registered dataclass (wire messages, ``Task``/``Assignment``/``Chunk``/
``Record``/``Signature``, trace events, live control types) becomes a
tagged object, bytes become hex, tuples are distinguished from lists,
sets are sorted into deterministic order, and registered enums
round-trip by value.  Closures are never serialized — callback
continuations are captured *by identifier* (see
:mod:`repro.runtime.replay`), which is what keeps the wire format this
small.

The base class registry is built lazily on first use: the message
modules of the baselines import their deployment builders, which import
the DES backend, so an import-time registry would be cyclic.  Layers
above the runtime (observability, the live backend) extend the registry
with :func:`register` / :func:`register_enum` instead of being imported
from here.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Optional

from repro.errors import ReplayError

__all__ = [
    "encode",
    "decode",
    "encode_json",
    "decode_json",
    "register",
    "register_enum",
    "registered_types",
]

_REGISTRY: Optional[dict[str, type]] = None
#: classes added by upper layers (obs events, live control types)
_EXTRA: dict[str, type] = {}
#: enum classes that round-trip by value; ``Opcode`` is installed lazily
_ENUMS: dict[str, type] = {}


def register(*classes: type) -> None:
    """Add dataclasses to the wire registry (idempotent per class).

    Registration is by class *name* — the decoder's tag — so two
    distinct classes may not share one.
    """
    global _REGISTRY
    for cls in classes:
        if not is_dataclass(cls):
            raise ReplayError(f"{cls.__name__} is not a dataclass")
        current = _EXTRA.get(cls.__name__)
        if current is not None and current is not cls:
            raise ReplayError(
                f"wire name {cls.__name__!r} already registered to a "
                f"different class"
            )
        _EXTRA[cls.__name__] = cls
    _REGISTRY = None  # fold extras in on next use


def register_enum(cls: type) -> None:
    """Add an :class:`~enum.Enum` class to the wire registry."""
    if not (isinstance(cls, type) and issubclass(cls, Enum)):
        raise ReplayError(f"{cls!r} is not an Enum class")
    current = _ENUMS.get(cls.__name__)
    if current is not None and current is not cls:
        raise ReplayError(
            f"enum name {cls.__name__!r} already registered to a "
            f"different class"
        )
    _ENUMS[cls.__name__] = cls


def _registry() -> dict[str, type]:
    global _REGISTRY
    if _REGISTRY is None:
        import repro.baselines.rcp as rcp
        import repro.baselines.zft as zft
        import repro.consensus.messages as cs_messages
        import repro.consensus.pbft as pbft
        import repro.core.messages as core_messages
        from repro.core.tasks import Assignment, Chunk, Opcode, Record, Task
        from repro.crypto.signatures import Signature

        reg: dict[str, type] = {}
        for mod in (core_messages, cs_messages):
            for name in mod.__all__:
                reg[name] = getattr(mod, name)
        for mod in (zft, rcp, pbft):
            for name in mod.__all__:
                cls = getattr(mod, name)
                if is_dataclass(cls):
                    reg[name] = cls
        for cls in (Task, Record, Assignment, Chunk, Signature):
            reg[cls.__name__] = cls
        _ENUMS.setdefault("Opcode", Opcode)
        reg.update(_EXTRA)
        _REGISTRY = reg
    return _REGISTRY


def registered_types() -> dict[str, type]:
    """Snapshot of the wire registry (name → class), extras included."""
    return dict(_registry())


def _enum_for(name: str) -> type:
    _registry()  # ensure the base enums are installed
    cls = _ENUMS.get(name)
    if cls is None:
        raise ReplayError(f"unknown enum {name!r}")
    return cls


def encode(value: Any, with_sender: bool = True) -> Any:
    """Lower ``value`` to JSON-compatible structures (tagged)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, bytes):
        return {"__b": value.hex()}
    if isinstance(value, tuple):
        return {"__t": [encode(v, with_sender) for v in value]}
    if isinstance(value, list):
        return [encode(v, with_sender) for v in value]
    if isinstance(value, (set, frozenset)):
        # sets are unordered; sort by encoded form for a deterministic wire
        body = sorted(
            (encode(v, with_sender) for v in value),
            key=lambda e: json.dumps(e, sort_keys=True, default=str),
        )
        tag = "__fs" if isinstance(value, frozenset) else "__s"
        return {tag: body}
    if isinstance(value, dict):
        return {
            "__d": [
                [encode(k, with_sender), encode(v, with_sender)]
                for k, v in value.items()
            ]
        }
    cls = type(value)
    if isinstance(value, Enum):
        return {"__e": cls.__name__, "v": value.value}
    if is_dataclass(value) and _registry().get(cls.__name__) is cls:
        body = {
            f.name: encode(getattr(value, f.name), with_sender)
            for f in fields(value)
            if f.init
        }
        out: dict[str, Any] = {"__c": cls.__name__, "f": body}
        # sender and the non-equivocation marker are stamped by the
        # transport on delivered copies, not constructor fields; both are
        # part of the inbox (with_sender=True) but not of outgoing content
        sender = getattr(value, "sender", None)
        if with_sender and sender is not None:
            out["s"] = sender
        if with_sender and getattr(value, "_neq", False):
            out["q"] = True
        return out
    raise ReplayError(f"cannot encode {cls.__name__}: {value!r}")


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, list):
        return [decode(v) for v in value]
    if isinstance(value, dict):
        if "__b" in value:
            return bytes.fromhex(value["__b"])
        if "__t" in value:
            return tuple(decode(v) for v in value["__t"])
        if "__s" in value:
            return {decode(v) for v in value["__s"]}
        if "__fs" in value:
            return frozenset(decode(v) for v in value["__fs"])
        if "__d" in value:
            return {decode(k): decode(v) for k, v in value["__d"]}
        if "__e" in value:
            return _enum_for(value["__e"])(value["v"])
        if "__c" in value:
            cls = _registry().get(value["__c"])
            if cls is None:
                raise ReplayError(f"unknown class {value['__c']!r}")
            kwargs = {k: decode(v) for k, v in value["f"].items()}
            obj = cls(**kwargs)
            if "s" in value:
                obj.sender = value["s"]
            if value.get("q"):
                obj._neq = True
            return obj
        raise ReplayError(f"unrecognized tagged object {value!r}")
    raise ReplayError(f"cannot decode {type(value).__name__}: {value!r}")


def encode_json(value: Any, with_sender: bool = True) -> str:
    """Compact deterministic JSON string of :func:`encode`."""
    return json.dumps(
        encode(value, with_sender), sort_keys=True, separators=(",", ":")
    )


def decode_json(text: str) -> Any:
    return decode(json.loads(text))
