"""JSON round-tripping of protocol messages for capture logs.

A captured inbox must survive a process boundary (JSONL file → later
debugging session), so delivered messages are encoded structurally:
every registered dataclass (wire messages, ``Task``/``Assignment``/
``Chunk``/``Record``/``Signature``) becomes a tagged object, bytes
become hex, tuples are distinguished from lists, and the ``Opcode``
enum round-trips by value.  Closures are never serialized — callback
continuations are captured *by identifier* (see
:mod:`repro.runtime.replay`), which is what keeps the log format this
small.

The class registry is built lazily on first use: the message modules of
the baselines import their deployment builders, which import the DES
backend, so an import-time registry would be cyclic.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any, Optional

from repro.errors import ReplayError

__all__ = ["encode", "decode", "encode_json", "decode_json"]

_REGISTRY: Optional[dict[str, type]] = None


def _registry() -> dict[str, type]:
    global _REGISTRY
    if _REGISTRY is None:
        import repro.baselines.rcp as rcp
        import repro.baselines.zft as zft
        import repro.consensus.messages as cs_messages
        import repro.consensus.pbft as pbft
        import repro.core.messages as core_messages
        from repro.core.tasks import Assignment, Chunk, Record, Task
        from repro.crypto.signatures import Signature

        reg: dict[str, type] = {}
        for mod in (core_messages, cs_messages):
            for name in mod.__all__:
                reg[name] = getattr(mod, name)
        for mod in (zft, rcp, pbft):
            for name in mod.__all__:
                cls = getattr(mod, name)
                if is_dataclass(cls):
                    reg[name] = cls
        for cls in (Task, Record, Assignment, Chunk, Signature):
            reg[cls.__name__] = cls
        _REGISTRY = reg
    return _REGISTRY


def encode(value: Any, with_sender: bool = True) -> Any:
    """Lower ``value`` to JSON-compatible structures (tagged)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, bytes):
        return {"__b": value.hex()}
    if isinstance(value, tuple):
        return {"__t": [encode(v, with_sender) for v in value]}
    if isinstance(value, list):
        return [encode(v, with_sender) for v in value]
    if isinstance(value, dict):
        return {
            "__d": [
                [encode(k, with_sender), encode(v, with_sender)]
                for k, v in value.items()
            ]
        }
    cls = type(value)
    from enum import Enum

    if isinstance(value, Enum):
        return {"__e": cls.__name__, "v": value.value}
    if is_dataclass(value) and cls.__name__ in _registry():
        body = {
            f.name: encode(getattr(value, f.name), with_sender)
            for f in fields(value)
            if f.init
        }
        out: dict[str, Any] = {"__c": cls.__name__, "f": body}
        # sender and the non-equivocation marker are stamped by the
        # transport on delivered copies, not constructor fields; both are
        # part of the inbox (with_sender=True) but not of outgoing content
        sender = getattr(value, "sender", None)
        if with_sender and sender is not None:
            out["s"] = sender
        if with_sender and getattr(value, "_neq", False):
            out["q"] = True
        return out
    raise ReplayError(f"cannot encode {cls.__name__}: {value!r}")


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, list):
        return [decode(v) for v in value]
    if isinstance(value, dict):
        if "__b" in value:
            return bytes.fromhex(value["__b"])
        if "__t" in value:
            return tuple(decode(v) for v in value["__t"])
        if "__d" in value:
            return {decode(k): decode(v) for k, v in value["__d"]}
        if "__e" in value:
            from repro.core.tasks import Opcode

            if value["__e"] != "Opcode":
                raise ReplayError(f"unknown enum {value['__e']!r}")
            return Opcode(value["v"])
        if "__c" in value:
            cls = _registry().get(value["__c"])
            if cls is None:
                raise ReplayError(f"unknown class {value['__c']!r}")
            kwargs = {k: decode(v) for k, v in value["f"].items()}
            obj = cls(**kwargs)
            if "s" in value:
                obj.sender = value["s"]
            if value.get("q"):
                obj._neq = True
            return obj
        raise ReplayError(f"unrecognized tagged object {value!r}")
    raise ReplayError(f"cannot decode {type(value).__name__}: {value!r}")


def encode_json(value: Any, with_sender: bool = True) -> str:
    """Compact deterministic JSON string of :func:`encode`."""
    return json.dumps(
        encode(value, with_sender), sort_keys=True, separators=(",", ":")
    )


def decode_json(text: str) -> Any:
    return decode(json.loads(text))
