"""Typed effect vocabulary emitted by pure protocol cores.

An :class:`Effect` is a *request* for the hosting runtime: send this
message, arm this timer, burn this much CPU and then call me back.  The
vocabulary is the complete set of interactions any role in the system
has with its substrate; a backend that interprets all of them can host
any core.  Cores never see how an effect is realised — the DES backend
maps them onto the simulated kernel/network, the test backend records
them, the replay backend matches them against a captured log.

Callback-carrying effects (:class:`SetTimer`, :class:`Schedule`,
:class:`Job`, :class:`CtrlJob`) name their continuation with a stable
identifier (timer name, sched id, job id) assigned by the core.  The
identifier — not the callable — is what a capture log records, so a
replay can re-invoke the *fresh* core's own pending continuation by id
without ever serialising a closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "Effect",
    "Send",
    "Multicast",
    "NeqMulticast",
    "SetTimer",
    "CancelTimer",
    "Schedule",
    "Job",
    "CtrlJob",
    "ApplyUpdate",
    "Emit",
    "Halt",
]


class Effect:
    """Marker base class for everything a core may ask of its runtime."""

    __slots__ = ()


@dataclass(slots=True)
class Send(Effect):
    """Point-to-point message over the authenticated plain channel."""

    dst: str
    msg: Any


@dataclass(slots=True)
class Multicast(Effect):
    """One message to each destination, in order, over plain channels."""

    dsts: tuple
    msg: Any


@dataclass(slots=True)
class NeqMulticast(Effect):
    """Multicast through the non-equivocating primitive (Sec 3.2)."""

    dsts: tuple
    msg: Any


@dataclass(slots=True)
class SetTimer(Effect):
    """Arm (or re-arm) the named one-shot timer.

    Firing invokes ``fn(*args)`` unless the core has crashed by then.
    Re-arming an already-armed name replaces the previous deadline.
    """

    name: str
    delay: float
    fn: Callable
    args: tuple = ()


@dataclass(slots=True)
class CancelTimer(Effect):
    """Disarm the named timer; a no-op if it is not armed."""

    name: str


@dataclass(slots=True)
class Schedule(Effect):
    """Raw delayed callback, *not* gated on the core being alive.

    Used by the input processes' workload pumps: a crashed IP keeps
    draining its task stream (the stream, not the process, is the
    workload's clock).  ``sched_id`` names the continuation for capture.
    """

    delay: float
    fn: Callable
    args: tuple = ()
    sched_id: int = 0


@dataclass(slots=True)
class Job(Effect):
    """Occupy one app core for ``cost`` seconds, then call ``fn(*args)``.

    ``guarded`` jobs skip the completion callback if the core crashed
    while the job was in flight; unguarded jobs always call back (the
    execution engine's slot-accounting callback must run even on a
    crashed host, exactly as the raw pre-refactor ``cpu.submit`` did —
    the core's own handlers re-check ``crashed``).

    ``milestones`` is a tuple of ``(offset, fn, args)``: each is invoked
    (unguarded) ``offset`` seconds after the job's start, supporting
    chunk streaming at fractional milestones of the compute job
    (Sec 5.1).  Producers compute offsets as ``cost * (i + 1) / k`` —
    an absolute offset rather than a fraction keeps the float arithmetic
    (and therefore the event timeline) bit-identical to inlined code.
    """

    cost: float
    fn: Callable
    args: tuple = ()
    job_id: int = 0
    guarded: bool = True
    milestones: tuple = ()


@dataclass(slots=True)
class CtrlJob(Effect):
    """Like :class:`Job` (guarded) but on the control-plane core bank,
    so signing/verification never steals app-compute cycles."""

    cost: float
    fn: Callable
    args: tuple = ()
    job_id: int = 0


@dataclass(slots=True)
class ApplyUpdate(Effect):
    """Charge ``cost`` seconds of state-update application to the app
    bank with no continuation (the store already mutated in-handler)."""

    cost: float


@dataclass(slots=True)
class Emit(Effect):
    """Publish a trace event on the deployment's observability bus."""

    event: Any


@dataclass(slots=True)
class Halt(Effect):
    """The core crashed: drop pending timers, ignore future inputs."""
