"""Standalone re-execution of one core from a bus-captured inbox.

Enable :attr:`DesHost.capture` on a host during a live run and attach a
:class:`~repro.obs.sinks.JsonlTraceSink` subscribed to
``CATEGORY_REPLAY``: the sink then records every *input* the core
consumed (messages in codec form; timer, job, milestone and sched fires
by identifier) interleaved with the *signature* of every effect the core
performed.  :func:`replay` re-runs a freshly constructed core against
that input log — with no Simulator and no Network — re-invoking the new
core's own pending continuations by identifier, and returns the
replayed effect-signature stream for comparison against the live one.

This is the post-mortem workflow for chaos-test failures: rebuild the
one suspect role, replay its exact inbox, and single-step its decisions
without re-running (or perturbing) the whole deployment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import ReplayError
from repro.runtime.api import Runtime, StubCpu
from repro.runtime.codec import decode_json, encode_json
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)

__all__ = [
    "effect_signature",
    "encode_message",
    "decode_message",
    "ReplayLog",
    "ReplayRuntime",
    "replay",
]


def encode_message(msg: Any) -> str:
    """Wire form of a delivered message for the capture log."""
    return encode_json(msg, with_sender=True)


def decode_message(text: str) -> Any:
    return decode_json(text)


def _content_digest(msg: Any) -> str:
    # sender excluded: outgoing messages are unstamped on the live side
    # at perform time only when fresh — a retained message re-sent later
    # still carries the stamp of its first trip, which the replayed copy
    # cannot reproduce.
    body = encode_json(msg, with_sender=False)
    return hashlib.sha256(body.encode()).hexdigest()[:12]


def effect_signature(effect) -> str:
    """Deterministic one-line fingerprint of an effect.

    Strong enough to pin message content (codec digest), timer names
    and deadlines, and job costs; stable across live and replayed
    execution because it never includes substrate-assigned values.
    """
    t = type(effect)
    if t is Send:
        return (
            f"send:{effect.dst}:{type(effect.msg).__name__}"
            f":{_content_digest(effect.msg)}"
        )
    if t is Multicast:
        return (
            f"mcast:{','.join(effect.dsts)}:{type(effect.msg).__name__}"
            f":{_content_digest(effect.msg)}"
        )
    if t is NeqMulticast:
        return (
            f"neq:{','.join(effect.dsts)}:{type(effect.msg).__name__}"
            f":{_content_digest(effect.msg)}"
        )
    if t is SetTimer:
        return f"set-timer:{effect.name}:{effect.delay!r}"
    if t is CancelTimer:
        return f"cancel-timer:{effect.name}"
    if t is Schedule:
        return f"sched:{effect.sched_id}:{effect.delay!r}"
    if t is Job:
        return (
            f"job:{effect.job_id}:{effect.cost!r}:g{int(effect.guarded)}"
            f":m{len(effect.milestones)}"
        )
    if t is CtrlJob:
        return f"ctrl-job:{effect.job_id}:{effect.cost!r}"
    if t is ApplyUpdate:
        return f"apply-update:{effect.cost!r}"
    if t is Emit:
        ev = effect.event
        body = json.dumps(
            ev.as_dict(), sort_keys=True, separators=(",", ":"), default=str
        )
        return f"emit:{ev.kind}:{hashlib.sha256(body.encode()).hexdigest()[:12]}"
    if t is Halt:
        return "halt"
    raise ReplayError(f"unknown effect {effect!r}")


@dataclass
class ReplayLog:
    """Parsed capture for one pid: inputs and live effect signatures."""

    pid: str
    #: ``(time, input_kind, ref)`` in consumption order
    inputs: list[tuple[float, str, str]] = field(default_factory=list)
    #: live effect signatures, in perform order
    effects: list[str] = field(default_factory=list)

    @classmethod
    def from_jsonl(cls, lines: Iterable[str], pid: str) -> "ReplayLog":
        """Extract one core's log from JSONL trace output (other pids'
        and non-replay lines are ignored)."""
        log = cls(pid=pid)
        for line in lines:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("pid") != pid:
                continue
            if rec.get("kind") == "replay-input":
                log.inputs.append((rec["time"], rec["input_kind"], rec["ref"]))
            elif rec.get("kind") == "replay-effect":
                log.effects.append(rec["signature"])
        return log


class _ReplayCpu(StubCpu):
    """Mirrors ``CpuBank.busy_seconds`` accounting: the live bank charges
    the full cost at submit time, so accumulating app-bank job costs as
    they are performed reproduces every value the core can read."""


class ReplayRuntime(Runtime):
    """Backend that re-feeds a captured inbox to a fresh core."""

    def __init__(
        self,
        core: ProtocolCore,
        cores: int = 7,
        wants: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.core = core
        self._now = 0.0
        self._wants = wants or (lambda category: True)
        self._cpu = _ReplayCpu(cores)
        self._timers: dict[str, SetTimer] = {}
        self._jobs: dict[int, Any] = {}
        self._milestones: dict[tuple[int, int], tuple] = {}
        self._scheds: dict[int, Schedule] = {}
        self.effects: list[str] = []
        core.bind(self)

    # --------------------------------------------------- runtime interface
    @property
    def now(self) -> float:
        return self._now

    def wants(self, category: str) -> bool:
        return self._wants(category)

    def timer_armed(self, name: str) -> bool:
        return name in self._timers

    @property
    def app_cpu(self):
        return self._cpu

    def perform(self, effect) -> None:
        self.effects.append(effect_signature(effect))
        t = type(effect)
        if t is SetTimer:
            self._timers[effect.name] = effect
        elif t is CancelTimer:
            self._timers.pop(effect.name, None)
        elif t is Schedule:
            self._scheds[effect.sched_id] = effect
        elif t is Job:
            self._cpu.busy_seconds += effect.cost
            self._jobs[effect.job_id] = effect
            for idx, milestone in enumerate(effect.milestones):
                self._milestones[(effect.job_id, idx)] = milestone
        elif t is CtrlJob:
            self._jobs[effect.job_id] = effect
        elif t is ApplyUpdate:
            self._cpu.busy_seconds += effect.cost
        # Send/Multicast/NeqMulticast/Emit/Halt have no replay-side state

    # ----------------------------------------------------------- log feed
    def feed(self, time: float, input_kind: str, ref: str) -> None:
        """Consume one recorded input, advancing the replay clock."""
        self._now = time
        if input_kind == "msg":
            self.core.handle(decode_message(ref))
            return
        if input_kind == "timer":
            eff = self._timers.pop(ref, None)
            if eff is None:
                raise ReplayError(f"timer {ref!r} not armed at replay time")
            if not self.core.crashed:
                eff.fn(*eff.args)
            return
        if input_kind == "sched":
            eff = self._scheds.pop(int(ref), None)
            if eff is None:
                raise ReplayError(f"sched {ref!r} not pending at replay time")
            eff.fn(*eff.args)
            return
        if input_kind == "job":
            eff = self._jobs.pop(int(ref), None)
            if eff is None:
                raise ReplayError(f"job {ref!r} not pending at replay time")
            if isinstance(eff, CtrlJob) or eff.guarded:
                if self.core.crashed:
                    return
            eff.fn(*eff.args)
            return
        if input_kind == "milestone":
            job_id, _, idx = ref.partition(":")
            milestone = self._milestones.pop((int(job_id), int(idx)), None)
            if milestone is None:
                raise ReplayError(
                    f"milestone {ref!r} not pending at replay time"
                )
            _, fn, args = milestone
            fn(*args)
            return
        raise ReplayError(f"unknown input kind {input_kind!r}")


def replay(
    core: ProtocolCore,
    log: ReplayLog,
    cores: int = 7,
    wants: Optional[Callable[[str], bool]] = None,
) -> ReplayRuntime:
    """Drive a fresh ``core`` through every input in ``log``.

    Returns the runtime; ``runtime.effects`` is the replayed effect
    stream, directly comparable to ``log.effects`` from the live run.
    """
    rt = ReplayRuntime(core, cores=cores, wants=wants)
    for time, input_kind, ref in log.inputs:
        rt.feed(time, input_kind, ref)
    return rt
