"""Discrete-event backend: hosts one :class:`ProtocolCore` on the DES.

A :class:`DesHost` is the glue between a pure core and the simulated
substrate.  It interprets every effect with exactly the calls the
pre-refactor inline role code made — same ``Network.send`` order, same
``CpuBank.submit`` / ``Simulator.schedule_at`` sequence, same guard
closures — so same-seed traces are bit-identical across the refactor.

With :attr:`capture` enabled the host additionally publishes
:class:`~repro.obs.events.ReplayInput` / ``ReplayEffect`` events on the
bus: the core's full inbox (messages, timer fires, job and milestone
completions) and its full effect stream.  A :class:`JsonlTraceSink`
subscribed to ``CATEGORY_REPLAY`` then yields a standalone re-runnable
log for :mod:`repro.runtime.replay`.  Capture is an explicit opt-in
flag — not a ``bus.wants`` query — because all-category sinks must keep
seeing the exact pre-capture event stream.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import ReplayEffect, ReplayInput
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)
from repro.runtime.replay import effect_signature, encode_message
from repro.sim.process import SimProcess

__all__ = ["DesHost"]


def _noop() -> None:
    return None


class DesHost(SimProcess):
    """One simulated node running one protocol core."""

    def __init__(
        self,
        sim,
        net,
        core: ProtocolCore,
        cores: int = 7,
        capture: bool = False,
    ) -> None:
        super().__init__(sim, core.pid, cores=cores)
        self.net = net
        self.core = core
        #: opt-in replay capture (see module docstring).  Pass it at
        #: construction to also capture the core's birth effects (the
        #: initial timers performed during ``bind``) — a replayed core
        #: re-performs those, so a from-birth log is what byte-compares.
        self.capture = capture
        core.bind(self)

    # --------------------------------------------------- runtime interface
    @property
    def now(self) -> float:
        return self.sim.now

    def wants(self, category: str) -> bool:
        return self.sim.bus.wants(category)

    @property
    def app_cpu(self):
        return self.cpu

    # SimProcess already provides timer_armed()

    def perform(self, effect) -> None:
        if self.capture:
            self.sim.bus.emit(
                ReplayEffect(
                    time=self.sim.now,
                    pid=self.pid,
                    signature=effect_signature(effect),
                )
            )
        if type(effect) is Send:
            self.net.send(self.pid, effect.dst, effect.msg)
        elif type(effect) is Multicast:
            self.net.multicast(self.pid, effect.dsts, effect.msg)
        elif type(effect) is NeqMulticast:
            self.net.neq_multicast(self.pid, effect.dsts, effect.msg)
        elif type(effect) is SetTimer:
            self.set_timer(
                effect.name, effect.delay, self._fire_timer, effect
            )
        elif type(effect) is CancelTimer:
            self.cancel_timer(effect.name)
        elif type(effect) is Schedule:
            self.sim.schedule(effect.delay, self._fire_sched, effect)
        elif type(effect) is Job:
            run = self._job_thunk(effect)
            handle = self.cpu.submit(
                effect.cost, self._guard(run) if effect.guarded else run
            )
            start = handle.time - effect.cost
            for idx in range(len(effect.milestones)):
                offset = effect.milestones[idx][0]
                self.sim.schedule_at(
                    start + offset,
                    self._fire_milestone,
                    effect,
                    idx,
                )
        elif type(effect) is CtrlJob:
            self.ctrl.submit(effect.cost, self._guard(self._job_thunk(effect)))
        elif type(effect) is ApplyUpdate:
            self.cpu.submit(effect.cost, self._guard(_noop))
        elif type(effect) is Emit:
            self.sim.bus.emit(effect.event)
        elif type(effect) is Halt:
            self.crash()
        else:  # pragma: no cover - vocabulary is closed
            raise TypeError(f"unknown effect {effect!r}")

    # -------------------------------------------------------- continuations
    def _record_input(self, kind: str, ref: str) -> None:
        self.sim.bus.emit(
            ReplayInput(
                time=self.sim.now, pid=self.pid, input_kind=kind, ref=ref
            )
        )

    def _fire_timer(self, effect: SetTimer) -> None:
        if self.capture:
            self._record_input("timer", effect.name)
        effect.fn(*effect.args)

    def _fire_sched(self, effect: Schedule) -> None:
        if self.capture:
            self._record_input("sched", str(effect.sched_id))
        effect.fn(*effect.args)

    def _job_thunk(self, effect):
        def run() -> None:
            if self.capture:
                self._record_input("job", str(effect.job_id))
            effect.fn(*effect.args)

        return run

    def _fire_milestone(self, effect: Job, idx: int) -> None:
        if self.capture:
            self._record_input("milestone", f"{effect.job_id}:{idx}")
        _, fn, args = effect.milestones[idx]
        fn(*args)

    # ------------------------------------------------------------ messaging
    def deliver(self, msg: Any) -> None:
        if self.crashed:
            return
        if self.capture:
            self._record_input("msg", encode_message(msg))
        self.core.handle(msg)
        self.unhandled_messages = self.core.unhandled_messages

    # ---------------------------------------------------------------- crash
    def crash(self) -> None:
        self.core.crashed = True
        super().crash()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DesHost {type(self.core).__name__} {self.pid}>"
