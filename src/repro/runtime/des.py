"""Discrete-event backend: hosts one :class:`ProtocolCore` on the DES.

A :class:`DesHost` is the glue between a pure core and the simulated
substrate.  Effect dispatch, capture and continuation plumbing live in
the shared :class:`~repro.runtime.interpreter.EffectInterpreter`; this
module supplies the DES primitives with exactly the calls the
pre-refactor inline role code made — same ``Network.send`` order, same
``CpuBank.submit`` / ``Simulator.schedule_at`` sequence, same guard
closures — so same-seed traces are bit-identical across the refactor.

With :attr:`capture` enabled the host additionally publishes
:class:`~repro.obs.events.ReplayInput` / ``ReplayEffect`` events on the
bus: the core's full inbox (messages, timer fires, job and milestone
completions) and its full effect stream.  A :class:`JsonlTraceSink`
subscribed to ``CATEGORY_REPLAY`` then yields a standalone re-runnable
log for :mod:`repro.runtime.replay`.  Capture is an explicit opt-in
flag — not a ``bus.wants`` query — because all-category sinks must keep
seeing the exact pre-capture event stream.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import ReplayEffect, ReplayInput
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)
from repro.runtime.interpreter import EffectInterpreter
from repro.runtime.replay import effect_signature
from repro.sim.process import SimProcess

__all__ = ["DesHost"]


def _noop() -> None:
    return None


class DesHost(SimProcess, EffectInterpreter):
    """One simulated node running one protocol core."""

    def __init__(
        self,
        sim,
        net,
        core: ProtocolCore,
        cores: int = 7,
        capture: bool = False,
    ) -> None:
        super().__init__(sim, core.pid, cores=cores)
        self.net = net
        self.core = core
        # pre-bound network entry points: the Send/Multicast/NeqMulticast
        # arms route straight into the flyweight fan-out without
        # re-resolving attributes per performed effect
        self._net_send = net.send
        self._net_multicast = net.multicast
        self._net_neq_multicast = net.neq_multicast
        #: opt-in replay capture (see module docstring).  Pass it at
        #: construction to also capture the core's birth effects (the
        #: initial timers performed during ``bind``) — a replayed core
        #: re-performs those, so a from-birth log is what byte-compares.
        self.capture = capture
        core.bind(self)

    # --------------------------------------------------- runtime interface
    @property
    def now(self) -> float:
        return self.sim.now

    def wants(self, category: str) -> bool:
        return self.sim.bus.wants(category)

    @property
    def app_cpu(self):
        return self.cpu

    # SimProcess already provides timer_armed()

    perform = EffectInterpreter.interpret

    # -------------------------------------------------------- capture hooks
    def _capture_effect(self, effect) -> None:
        self.sim.bus.emit(
            ReplayEffect(
                time=self.sim.now,
                pid=self.pid,
                signature=effect_signature(effect),
            )
        )

    def _record_input(self, kind: str, ref: str) -> None:
        self.sim.bus.emit(
            ReplayInput(
                time=self.sim.now, pid=self.pid, input_kind=kind, ref=ref
            )
        )

    # ------------------------------------------------------- DES primitives
    def _do_send(self, effect: Send) -> None:
        self._net_send(self.pid, effect.dst, effect.msg)

    def _do_multicast(self, effect: Multicast) -> None:
        self._net_multicast(self.pid, effect.dsts, effect.msg)

    def _do_neq_multicast(self, effect: NeqMulticast) -> None:
        self._net_neq_multicast(self.pid, effect.dsts, effect.msg)

    def _do_set_timer(self, effect: SetTimer) -> None:
        self.set_timer(effect.name, effect.delay, self._fire_timer, effect)

    def _do_cancel_timer(self, effect: CancelTimer) -> None:
        self.cancel_timer(effect.name)

    def _do_schedule(self, effect: Schedule) -> None:
        self.sim.schedule(effect.delay, self._fire_sched, effect)

    def _do_job(self, effect: Job) -> None:
        run = self._job_thunk(effect)
        handle = self.cpu.submit(
            effect.cost, self._guard(run) if effect.guarded else run
        )
        start = handle.time - effect.cost
        for idx in range(len(effect.milestones)):
            offset = effect.milestones[idx][0]
            self.sim.schedule_at(
                start + offset,
                self._fire_milestone,
                effect,
                idx,
            )

    def _do_ctrl_job(self, effect: CtrlJob) -> None:
        self.ctrl.submit(effect.cost, self._guard(self._job_thunk(effect)))

    def _do_apply_update(self, effect: ApplyUpdate) -> None:
        self.cpu.submit(effect.cost, self._guard(_noop))

    def _do_emit(self, effect: Emit) -> None:
        self.sim.bus.emit(effect.event)

    def _do_halt(self, effect: Halt) -> None:
        self.crash()

    # ------------------------------------------------------------ messaging
    def deliver(self, msg: Any) -> None:
        if self.crashed:
            return
        self._deliver_to_core(msg)

    # ---------------------------------------------------------------- crash
    def crash(self) -> None:
        self.core.crashed = True
        super().crash()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DesHost {type(self.core).__name__} {self.pid}>"
