"""Backend contract between a :class:`ProtocolCore` and its host.

A runtime provides exactly four read-side services (clock, trace-filter
predicate, timer introspection, CPU-bank view) plus one write-side
entrypoint, :meth:`Runtime.perform`.  Effects are performed *immediately
and in emission order* — the core calls ``perform`` as it goes rather
than returning a batch — so an interpreting backend executes the exact
call sequence the pre-refactor inline code did (this is what keeps DES
traces bit-identical), while recording backends still observe the full
effect stream of each handler invocation.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.effects import Effect

__all__ = ["Runtime", "StubCpu"]


class Runtime:
    """Interface every backend implements."""

    def perform(self, effect: Effect) -> None:
        """Realise one effect (send / arm timer / burn CPU / …)."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """Current time on the backend's clock."""
        raise NotImplementedError

    def wants(self, category: str) -> bool:
        """Whether any trace sink subscribes to ``category`` — lets the
        core skip building event payloads nobody will see."""
        raise NotImplementedError

    def timer_armed(self, name: str) -> bool:
        """Whether the named timer is currently pending."""
        raise NotImplementedError

    @property
    def app_cpu(self) -> Any:
        """View of the app-compute bank (``cores``, ``busy_seconds``,
        ``earliest_free()``); backends without real CPU accounting
        return a :class:`StubCpu`."""
        raise NotImplementedError


class StubCpu:
    """Inert CPU-bank stand-in for non-simulating backends."""

    def __init__(self, cores: int = 1) -> None:
        self.cores = cores
        self.busy_seconds = 0.0
        self.jobs_done = 0

    def earliest_free(self) -> float:
        return 0.0

    def backlog_seconds(self, now: float = 0.0) -> float:
        return 0.0
