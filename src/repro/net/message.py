"""Message base types for the simulated network.

All protocol messages derive from :class:`Message`.  Two things matter to
the substrate: the *wire size* (drives the bandwidth model — record chunks
dominate, matching the paper's communication-replication tradeoff) and the
*sender* field stamped by the network (the transport authenticates point-
to-point links, like RDMA RC queue pairs; impersonation therefore requires
forging signatures, which the crypto substrate rules out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Message", "HEADER_BYTES"]

#: Fixed per-message overhead (headers, framing) in bytes.
HEADER_BYTES = 128


@dataclass
class Message:
    """Base class for everything sent over the simulated network.

    Attributes
    ----------
    sender:
        Stamped by the network at send time with the *actual* transmitting
        process id.  Handlers trust this field (link-level authentication),
        but never trust message *content* from untrusted roles.
    """

    sender: Optional[str] = field(default=None, init=False, compare=False)

    #: Class-level default for the non-equivocating-multicast flag; the
    #: network sets an instance attribute on the (rare) neq sends, so the
    #: hot send path reads it without ``getattr`` fallbacks.  Deliberately
    #: not a dataclass field: it carries no per-message state otherwise.
    _neq = False

    def payload_bytes(self) -> int:
        """Size of the payload; subclasses carrying bulk data override."""
        return 0

    def wire_size(self) -> int:
        """Total bytes on the wire (payload + fixed header)."""
        return self.payload_bytes() + HEADER_BYTES
