"""Reliable FIFO links with NIC bandwidth accounting.

Models the paper's RDMA RC transport: messages between correct processes
are never dropped, duplicated or reordered (Sec 3, "Communication
Primitives").  Each node owns a NIC with finite full-duplex bandwidth;
a message occupies the sender's egress and the receiver's ingress for
``size / bandwidth`` seconds, then propagation latency from the
:class:`~repro.net.partial_synchrony.SynchronyModel` applies.

The ingress serialization is what reproduces the paper's Sec 7.2 finding:
the only bandwidth bottleneck is the *link to OP where records converge* —
executor→verifier replication is spread across many NICs.
Per-node byte meters feed the bandwidth-profiling bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import NetworkError
from repro.net.message import Message
from repro.obs.events import CATEGORY_NET, LinkTransfer
from repro.net.partial_synchrony import SynchronyModel
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["Network", "Nic", "ByteMeter"]

#: Default NIC bandwidth: the paper's 100 Gbps Infiniband, in bytes/second.
DEFAULT_BANDWIDTH = 100e9 / 8


class ByteMeter:
    """Per-second histogram of bytes, for bandwidth time-series reporting."""

    def __init__(self, bin_seconds: float = 1.0) -> None:
        if bin_seconds <= 0:
            raise NetworkError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        self.total = 0
        self._bins: dict[int, int] = {}

    def add(self, time: float, nbytes: int) -> None:
        """Record ``nbytes`` transferred at simulated ``time``."""
        self.total += nbytes
        idx = int(time // self.bin_seconds)
        self._bins[idx] = self._bins.get(idx, 0) + nbytes

    def rate_series(self) -> list[tuple[float, float]]:
        """(bin_start_time, bytes/sec) pairs, sorted by time."""
        return [
            (idx * self.bin_seconds, count / self.bin_seconds)
            for idx, count in sorted(self._bins.items())
        ]

    def mean_rate(self, start: float, end: float) -> float:
        """Average bytes/sec over [start, end).

        Boundary bins are prorated by their overlap with the window: a bin
        only partially covered contributes its per-second rate times the
        covered duration, so windows that cut through a bin are not
        overestimated (bytes within a bin are treated as uniformly spread).
        """
        if end <= start:
            raise NetworkError("empty meter window")
        bs = self.bin_seconds
        lo = int(start // bs)
        hi = int(math.ceil(end / bs))
        bins = self._bins
        if hi - lo > len(bins):
            items: Iterable[tuple[int, int]] = (
                (i, c) for i, c in bins.items() if lo <= i < hi
            )
        else:
            items = ((i, bins[i]) for i in range(lo, hi) if i in bins)
        total = 0.0
        for i, count in items:
            overlap = min(end, (i + 1) * bs) - max(start, i * bs)
            total += count * (overlap / bs)
        return total / (end - start)


@dataclass
class Nic:
    """Per-node NIC state: next-free times and traffic meters."""

    bandwidth: float
    egress_free: float = 0.0
    ingress_free: float = 0.0
    egress_meter: ByteMeter = field(default_factory=ByteMeter)
    ingress_meter: ByteMeter = field(default_factory=ByteMeter)


class Network:
    """The simulated cluster network.

    Parameters
    ----------
    sim:
        Owning simulator.
    synchrony:
        Latency/GST model.
    bandwidth:
        Per-NIC bandwidth in bytes/second (full duplex).
    neq_latency_factor:
        Multiplier on propagation latency for the non-equivocating
        multicast primitive — it is "relatively heavyweight" (Sec 3) since
        implementations go through RDMA reliable broadcast or trusted
        hardware.
    """

    def __init__(
        self,
        sim: Simulator,
        synchrony: Optional[SynchronyModel] = None,
        bandwidth: float = DEFAULT_BANDWIDTH,
        neq_latency_factor: float = 3.0,
    ) -> None:
        if bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        self.sim = sim
        self.synchrony = synchrony or SynchronyModel()
        self.bandwidth = bandwidth
        self.neq_latency_factor = neq_latency_factor
        # Δ must bound what the *network* can actually produce after GST,
        # which includes the neq amplification — otherwise Δ-derived
        # timeouts falsely fire on correct neq senders (liveness).
        worst = self.synchrony.post_gst_bound() * max(1.0, neq_latency_factor)
        if self.synchrony.delta < worst:
            raise NetworkError(
                "delta must bound post-GST latency including the neq "
                f"premium (delta={self.synchrony.delta}, worst neq "
                f"latency={worst})"
            )
        self._procs: dict[str, "SimProcess"] = {}
        self._nics: dict[str, Nic] = {}
        # pid → (deliver-callback, nic): one dict lookup on the send path
        self._endpoints: dict[str, tuple] = {}
        self._fifo_tail: dict[tuple[str, str], float] = {}
        self._rng = sim.rng("network")
        self.messages_sent = 0
        self.neq_multicasts = 0
        #: individual link sends performed on behalf of neq_multicast —
        #: the sanitizer cross-checks this against neq-labeled transfers
        self.neq_sends = 0

    # ------------------------------------------------------------- topology
    def register(self, proc: "SimProcess") -> None:
        """Attach a process to the network (one NIC per process id)."""
        if proc.pid in self._procs:
            raise NetworkError(f"duplicate process id {proc.pid!r}")
        self._procs[proc.pid] = proc
        nic = Nic(self.bandwidth)
        self._nics[proc.pid] = nic
        self._endpoints[proc.pid] = (proc.deliver, nic)

    def process(self, pid: str) -> "SimProcess":
        """Look up a registered process."""
        try:
            return self._procs[pid]
        except KeyError:
            raise NetworkError(f"unknown process {pid!r}") from None

    def nic(self, pid: str) -> Nic:
        """NIC state (for profiling/bench assertions)."""
        try:
            return self._nics[pid]
        except KeyError:
            raise NetworkError(f"unknown process {pid!r}") from None

    @property
    def pids(self) -> list[str]:
        """All registered process ids, in registration order."""
        return list(self._procs)

    # ----------------------------------------------------------------- send
    def send(self, src: str, dst: str, msg: Message, neq: bool = False) -> float:
        """Send ``msg`` from ``src`` to ``dst``; returns the delivery time.

        Reliable FIFO: per-(src,dst) delivery order matches send order.
        The message object is stamped with ``sender=src`` (link-level
        authentication); handlers receive the same object — the simulation
        trusts protocol code not to mutate received messages, which the
        test-suite enforces for the core protocols by checking digests.

        ``neq`` marks this individual send as travelling the
        non-equivocating channel (set by :meth:`neq_multicast`): the neq
        latency premium applies and ``msg._neq`` is stamped at *delivery*
        so the receiver sees the channel of this send — never a stale flag
        left over from how the same object was sent earlier.
        """
        endpoints = self._endpoints
        src_entry = endpoints.get(src)
        if src_entry is None:
            raise NetworkError(f"unknown sender {src!r}")
        dst_entry = endpoints.get(dst)
        if dst_entry is None:
            raise NetworkError(f"unknown process {dst!r}")
        deliver, dst_nic = dst_entry
        src_nic = src_entry[1]
        msg.sender = src
        size = msg.wire_size()
        sim = self.sim
        now = sim.now
        tx = size / self.bandwidth

        egress_start = src_nic.egress_free
        if now > egress_start:
            egress_start = now
        src_nic.egress_free = egress_start + tx
        src_nic.egress_meter.add(egress_start, size)

        latency = self.synchrony.sample(now, self._rng)
        if neq:
            latency *= self.neq_latency_factor
        arrive = src_nic.egress_free + latency

        ingress_start = dst_nic.ingress_free
        if arrive > ingress_start:
            ingress_start = arrive
        dst_nic.ingress_free = ingress_start + tx
        dst_nic.ingress_meter.add(ingress_start, size)

        deliver_at = dst_nic.ingress_free
        key = (src, dst)
        tail = self._fifo_tail.get(key, 0.0)
        if tail > deliver_at:
            deliver_at = tail
        self._fifo_tail[key] = deliver_at

        self.messages_sent += 1
        bus = sim.bus
        if bus.wants(CATEGORY_NET):
            bus.emit(
                LinkTransfer(
                    time=now,
                    pid=src,
                    dst=dst,
                    nbytes=size,
                    msg_type=type(msg).__name__,
                    deliver_at=deliver_at,
                    neq=neq,
                )
            )
        sim.post_at(deliver_at, self._deliver, deliver, msg, neq)
        return deliver_at

    @staticmethod
    def _deliver(deliver, msg: Message, neq: bool) -> None:
        if msg._neq is not neq:
            msg._neq = neq  # type: ignore[attr-defined]
        deliver(msg)

    # ------------------------------------------------------------ multicast
    def multicast(self, src: str, dsts: Iterable[str], msg: Message) -> None:
        """Plain multicast: independent sends of the same message object.

        NOTE: a Byzantine sender equivocates by *not* using this helper and
        calling :meth:`send` with different contents per destination; the
        substrate cannot prevent that — the protocols must (Sec 5.2.2,
        "Limited Equivocation").
        """
        for dst in dsts:
            self.send(src, dst, msg)

    def neq_multicast(self, src: str, group: Iterable[str], msg: Message) -> None:
        """Non-equivocating multicast (Mu-style reliable broadcast [3, 4]).

        Guarantees of the primitive, enforced by construction:

        * **No equivocation** — one payload object goes to every group
          member in a single call; there is no per-destination variant.
        * **Atomicity to correct receivers** — the substrate performs all
          the sends; a faulty *sender* can only choose not to invoke the
          primitive at all (an omission, handled by timeouts).

        It is heavyweight: propagation latency is multiplied by
        ``neq_latency_factor``.
        """
        group = list(group)
        if not group:
            raise NetworkError("neq_multicast to empty group")
        self.neq_multicasts += 1
        for dst in group:
            self.send(src, dst, msg, neq=True)
            self.neq_sends += 1
