"""Reliable FIFO links with NIC bandwidth accounting.

Models the paper's RDMA RC transport: messages between correct processes
are never dropped, duplicated or reordered (Sec 3, "Communication
Primitives").  Each node owns a NIC with finite full-duplex bandwidth;
a message occupies the sender's egress and the receiver's ingress for
``size / bandwidth`` seconds, then propagation latency from the
:class:`~repro.net.partial_synchrony.SynchronyModel` applies.

The ingress serialization is what reproduces the paper's Sec 7.2 finding:
the only bandwidth bottleneck is the *link to OP where records converge* —
executor→verifier replication is spread across many NICs.
Per-node byte meters feed the bandwidth-profiling bench.

Hot-path structure (DESIGN.md §14): :meth:`Network.send` validates its
endpoints and delegates to the flyweight :meth:`Network._fanout`, which
:meth:`Network.multicast` / :meth:`Network.neq_multicast` drive directly —
endpoints are resolved once per group, propagation latencies come from a
buffered vectorized RNG draw that consumes the ``network`` stream exactly
like the historical one-scalar-per-send path (so same-seed traces are
bit-identical), and :class:`ByteMeter` ingest is an append into pending
arrays that are folded into bins only when a meter is first read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.errors import NetworkError
from repro.net.message import Message
from repro.obs.events import LinkTransfer
from repro.net.partial_synchrony import SynchronyModel
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["Network", "Nic", "ByteMeter"]

#: Default NIC bandwidth: the paper's 100 Gbps Infiniband, in bytes/second.
DEFAULT_BANDWIDTH = 100e9 / 8

#: Vectorized latency draw size (amortizes one RNG call over this many sends).
_LATENCY_BUF = 512


class ByteMeter:
    """Per-second histogram of bytes, for bandwidth time-series reporting.

    Ingest is O(1) and allocation-light: ``add`` appends to pending
    ``(time, nbytes)`` arrays and the per-bin histogram is materialized
    lazily on first read (:meth:`rate_series` / :meth:`mean_rate`), so the
    send hot path never pays per-add dict updates.  :attr:`total` stays
    exact at all times.
    """

    __slots__ = ("bin_seconds", "total", "_binned", "_pending_t", "_pending_b")

    def __init__(self, bin_seconds: float = 1.0) -> None:
        if bin_seconds <= 0:
            raise NetworkError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        self.total = 0
        self._binned: dict[int, int] = {}
        self._pending_t: list[float] = []
        self._pending_b: list[int] = []

    def add(self, time: float, nbytes: int) -> None:
        """Record ``nbytes`` transferred at simulated ``time``."""
        self.total += nbytes
        self._pending_t.append(time)
        self._pending_b.append(nbytes)

    def _flush(self) -> dict[int, int]:
        """Fold pending samples into the bin histogram; returns the bins.

        Large backlogs are binned vectorized: one ``np.unique`` over the
        bin indices plus a weighted ``bincount``, folding one value per
        *bin* into the dict instead of one per sample.  Bin sums are
        integers far below 2**53, so the float accumulation is exact and
        the result matches the scalar fold bit for bit.
        """
        pending_t = self._pending_t
        binned = self._binned
        if pending_t:
            bs = self.bin_seconds
            get = binned.get
            if len(pending_t) > 64:
                idxs = (np.asarray(pending_t) // bs).astype(np.int64)
                uniq, inv = np.unique(idxs, return_inverse=True)
                sums = np.bincount(
                    inv, weights=np.asarray(self._pending_b, dtype=np.float64)
                )
                for i, s in zip(uniq.tolist(), sums.tolist()):
                    binned[i] = get(i, 0) + int(s)
            else:
                for t, b in zip(pending_t, self._pending_b):
                    idx = int(t // bs)
                    binned[idx] = get(idx, 0) + b
            pending_t.clear()
            self._pending_b.clear()
        return binned

    @property
    def _bins(self) -> dict[int, int]:
        """Materialized per-bin histogram (kept under the historical name:
        the sanitizer's meter audit probes it directly)."""
        return self._flush()

    def rate_series(self) -> list[tuple[float, float]]:
        """(bin_start_time, bytes/sec) pairs, sorted by time."""
        return [
            (idx * self.bin_seconds, count / self.bin_seconds)
            for idx, count in sorted(self._flush().items())
        ]

    def mean_rate(self, start: float, end: float) -> float:
        """Average bytes/sec over [start, end).

        Boundary bins are prorated by their overlap with the window: a bin
        only partially covered contributes its per-second rate times the
        covered duration, so windows that cut through a bin are not
        overestimated (bytes within a bin are treated as uniformly spread).
        """
        if end <= start:
            raise NetworkError("empty meter window")
        bs = self.bin_seconds
        lo = int(start // bs)
        hi = int(math.ceil(end / bs))
        bins = self._flush()
        if hi - lo > len(bins):
            items: Iterable[tuple[int, int]] = (
                (i, c) for i, c in bins.items() if lo <= i < hi
            )
        else:
            items = ((i, bins[i]) for i in range(lo, hi) if i in bins)
        total = 0.0
        for i, count in items:
            overlap = min(end, (i + 1) * bs) - max(start, i * bs)
            total += count * (overlap / bs)
        return total / (end - start)


@dataclass
class Nic:
    """Per-node NIC state: next-free times and traffic meters."""

    bandwidth: float
    egress_free: float = 0.0
    ingress_free: float = 0.0
    egress_meter: ByteMeter = field(default_factory=ByteMeter)
    ingress_meter: ByteMeter = field(default_factory=ByteMeter)


class Network:
    """The simulated cluster network.

    Parameters
    ----------
    sim:
        Owning simulator.
    synchrony:
        Latency/GST model.
    bandwidth:
        Per-NIC bandwidth in bytes/second (full duplex).
    neq_latency_factor:
        Multiplier on propagation latency for the non-equivocating
        multicast primitive — it is "relatively heavyweight" (Sec 3) since
        implementations go through RDMA reliable broadcast or trusted
        hardware.
    """

    def __init__(
        self,
        sim: Simulator,
        synchrony: Optional[SynchronyModel] = None,
        bandwidth: float = DEFAULT_BANDWIDTH,
        neq_latency_factor: float = 3.0,
    ) -> None:
        if bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        self.sim = sim
        self.synchrony = synchrony or SynchronyModel()
        self.bandwidth = bandwidth
        self.neq_latency_factor = neq_latency_factor
        # Δ must bound what the *network* can actually produce after GST,
        # which includes the neq amplification — otherwise Δ-derived
        # timeouts falsely fire on correct neq senders (liveness).
        worst = self.synchrony.post_gst_bound() * max(1.0, neq_latency_factor)
        if self.synchrony.delta < worst:
            raise NetworkError(
                "delta must bound post-GST latency including the neq "
                f"premium (delta={self.synchrony.delta}, worst neq "
                f"latency={worst})"
            )
        self._procs: dict[str, "SimProcess"] = {}
        self._nics: dict[str, Nic] = {}
        # pid → (deliver-callback, nic): one dict lookup on the send path
        self._endpoints: dict[str, tuple] = {}
        self._fifo_tail: dict[tuple[str, str], float] = {}
        self._rng = sim.rng("network")
        # buffered propagation-latency draws (base already added): the
        # i-th value consumed equals the i-th value the historical scalar
        # sample() path would have produced, so traces stay bit-identical
        self._lat_buf: list[float] = []
        self._lat_pos = 0
        self._lat_base = self.synchrony.base_latency
        self._lat_jitter = self.synchrony.jitter
        self.messages_sent = 0
        self.neq_multicasts = 0
        #: individual link sends performed on behalf of neq_multicast —
        #: the sanitizer cross-checks this against neq-labeled transfers
        self.neq_sends = 0
        # stale FIFO-tail entries are swept between kernel dispatch
        # batches (passive: dropping a tail that is behind sim.now can
        # never change a future max(tail, deliver_at))
        sim.add_batch_hook(self._sweep_fifo_tails)

    # ------------------------------------------------------------- topology
    def register(self, proc: "SimProcess") -> None:
        """Attach a process to the network (one NIC per process id)."""
        if proc.pid in self._procs:
            raise NetworkError(f"duplicate process id {proc.pid!r}")
        self._procs[proc.pid] = proc
        nic = Nic(self.bandwidth)
        self._nics[proc.pid] = nic
        self._endpoints[proc.pid] = (proc.deliver, nic)

    def process(self, pid: str) -> "SimProcess":
        """Look up a registered process."""
        try:
            return self._procs[pid]
        except KeyError:
            raise NetworkError(f"unknown process {pid!r}") from None

    def nic(self, pid: str) -> Nic:
        """NIC state (for profiling/bench assertions)."""
        try:
            return self._nics[pid]
        except KeyError:
            raise NetworkError(f"unknown process {pid!r}") from None

    @property
    def pids(self) -> list[str]:
        """All registered process ids, in registration order."""
        return list(self._procs)

    # ------------------------------------------------------------ latencies
    def _draw_latencies(self, n: int) -> list[float]:
        """``n`` post-GST propagation latencies (base + jitter), from the
        buffered vectorized draw.

        Stream-compatible with the scalar path by construction: a size-k
        ``Generator.uniform`` draw yields the same values as k sequential
        scalar draws, and the buffer is consumed strictly in draw order.
        A mid-run change of the synchrony's base/jitter discards the
        buffer (still deterministic — the discard point is a pure function
        of the schedule), keeping latencies consistent with the new
        parameters.
        """
        syn = self.synchrony
        if syn.jitter != self._lat_jitter or syn.base_latency != self._lat_base:
            self._lat_buf = []
            self._lat_pos = 0
            self._lat_jitter = syn.jitter
            self._lat_base = syn.base_latency
        buf = self._lat_buf
        pos = self._lat_pos
        avail = len(buf) - pos
        if avail >= n:
            self._lat_pos = pos + n
            return buf[pos : pos + n]
        out = buf[pos:]
        need = n - avail
        fill = _LATENCY_BUF if _LATENCY_BUF > need else need
        fresh = (
            syn.base_latency + self._rng.uniform(0.0, syn.jitter, fill)
        ).tolist()
        self._lat_buf = fresh
        self._lat_pos = need
        out.extend(fresh[:need])
        return out

    # ----------------------------------------------------------------- send
    def send(self, src: str, dst: str, msg: Message, neq: bool = False) -> float:
        """Send ``msg`` from ``src`` to ``dst``; returns the delivery time.

        Reliable FIFO: per-(src,dst) delivery order matches send order.
        The message object is stamped with ``sender=src`` (link-level
        authentication); handlers receive the same object — the simulation
        trusts protocol code not to mutate received messages, which the
        test-suite enforces for the core protocols by checking digests.

        ``neq`` marks this individual send as travelling the
        non-equivocating channel (set by :meth:`neq_multicast`): the neq
        latency premium applies and ``msg._neq`` is stamped at *delivery*
        so the receiver sees the channel of this send — never a stale flag
        left over from how the same object was sent earlier.

        This is the validating path; the arithmetic lives in the shared
        flyweight :meth:`_fanout`, so unicast and multicast sends are the
        same float operations in the same order.
        """
        endpoints = self._endpoints
        if src not in endpoints:
            raise NetworkError(f"unknown sender {src!r}")
        entry = endpoints.get(dst)
        if entry is None:
            raise NetworkError(f"unknown process {dst!r}")
        return self._fanout(src, (dst,), (entry,), msg, neq)

    def _fanout(
        self,
        src: str,
        dsts: tuple,
        entries: tuple,
        msg: Message,
        neq: bool,
    ) -> float:
        """Flyweight send core: one resolved group, one vectorized latency
        draw, meter ingest via pending-array appends.  Returns the last
        delivery time.  Per-destination arithmetic is kept operation-for-
        operation identical to the historical per-send path (pinned by the
        golden trace fixtures)."""
        msg.sender = src
        size = msg.wire_size()
        sim = self.sim
        now = sim.now
        tx = size / self.bandwidth
        src_nic: Nic = self._endpoints[src][1]
        syn = self.synchrony
        n = len(dsts)

        # one vectorized draw per group; the pre-GST adversarial-delay
        # case interleaves two draws per send and so must stay scalar
        if syn.pre_gst_extra > 0.0 and now < syn.gst:
            rng = self._rng
            lats: Optional[list[float]] = [
                syn.sample(now, rng) for _ in range(n)
            ]
        elif syn.jitter > 0.0:
            lats = self._draw_latencies(n)
        else:
            lats = None  # constant base latency, no stream consumption

        base = syn.base_latency
        factor = self.neq_latency_factor
        fifo = self._fifo_tail
        bus = sim.bus
        want_net = bus._want_net
        egress_meter = src_nic.egress_meter
        eg_t = egress_meter._pending_t
        eg_b = egress_meter._pending_b
        post_at = sim.post_at
        deliver_fn = self._deliver
        msg_type = type(msg).__name__ if want_net else ""
        deliver_at = 0.0

        for i in range(n):
            egress_start = src_nic.egress_free
            if now > egress_start:
                egress_start = now
            egress_end = src_nic.egress_free = egress_start + tx
            eg_t.append(egress_start)
            eg_b.append(size)

            latency = base if lats is None else lats[i]
            if neq:
                latency = latency * factor
            arrive = egress_end + latency

            deliver, dst_nic = entries[i]
            ingress_start = dst_nic.ingress_free
            if arrive > ingress_start:
                ingress_start = arrive
            deliver_at = dst_nic.ingress_free = ingress_start + tx
            im = dst_nic.ingress_meter
            im.total += size
            im._pending_t.append(ingress_start)
            im._pending_b.append(size)

            dst = dsts[i]
            key = (src, dst)
            tail = fifo.get(key, 0.0)
            if tail > deliver_at:
                deliver_at = tail
            fifo[key] = deliver_at

            if want_net:
                bus.emit(
                    LinkTransfer(
                        time=now,
                        pid=src,
                        dst=dst,
                        nbytes=size,
                        msg_type=msg_type,
                        deliver_at=deliver_at,
                        neq=neq,
                    )
                )
            post_at(deliver_at, deliver_fn, deliver, msg, neq)

        egress_meter.total += size * n
        self.messages_sent += n
        return deliver_at

    @staticmethod
    def _deliver(deliver, msg: Message, neq: bool) -> None:
        if msg._neq is not neq:
            msg._neq = neq  # type: ignore[attr-defined]
        deliver(msg)

    # ---------------------------------------------------------- maintenance
    def _sweep_fifo_tails(self) -> None:
        """Drop FIFO-tail entries whose delivery time is behind ``sim.now``.

        Runs between kernel dispatch batches (:meth:`Simulator.
        add_batch_hook`).  A stale tail can never win the ``max(tail,
        deliver_at)`` race again — every future delivery lands at or after
        ``now`` — so the sweep is invisible to the simulation and merely
        bounds the map to pairs with in-flight traffic.
        """
        tails = self._fifo_tail
        if not tails:
            return
        now = self.sim.now
        stale = [key for key, tail in tails.items() if tail <= now]
        for key in stale:
            del tails[key]

    # ------------------------------------------------------------ multicast
    def multicast(self, src: str, dsts: Iterable[str], msg: Message) -> None:
        """Plain multicast: independent sends of the same message object.

        NOTE: a Byzantine sender equivocates by *not* using this helper and
        calling :meth:`send` with different contents per destination; the
        substrate cannot prevent that — the protocols must (Sec 5.2.2,
        "Limited Equivocation").
        """
        dsts = dsts if type(dsts) is tuple else tuple(dsts)
        if not dsts:
            return
        endpoints = self._endpoints
        if src not in endpoints:
            raise NetworkError(f"unknown sender {src!r}")
        try:
            entries = tuple(endpoints[d] for d in dsts)
        except KeyError as exc:
            raise NetworkError(f"unknown process {exc.args[0]!r}") from None
        self._fanout(src, dsts, entries, msg, False)

    def neq_multicast(self, src: str, group: Iterable[str], msg: Message) -> None:
        """Non-equivocating multicast (Mu-style reliable broadcast [3, 4]).

        Guarantees of the primitive, enforced by construction:

        * **No equivocation** — one payload object goes to every group
          member in a single call; there is no per-destination variant.
        * **Atomicity to correct receivers** — the substrate performs all
          the sends; a faulty *sender* can only choose not to invoke the
          primitive at all (an omission, handled by timeouts).

        It is heavyweight: propagation latency is multiplied by
        ``neq_latency_factor``.
        """
        group = group if type(group) is tuple else tuple(group)
        if not group:
            raise NetworkError("neq_multicast to empty group")
        endpoints = self._endpoints
        if src not in endpoints:
            raise NetworkError(f"unknown sender {src!r}")
        try:
            entries = tuple(endpoints[d] for d in group)
        except KeyError as exc:
            raise NetworkError(f"unknown process {exc.args[0]!r}") from None
        self.neq_multicasts += 1
        self._fanout(src, group, entries, msg, True)
        self.neq_sends += len(group)
