"""Cluster topology descriptions.

A :class:`Topology` names the processes of a deployment and their role
partition: input/output processes, the coordinator verifier sub-cluster
VP_CO, additional verifier sub-clusters VP_i, and the executor pool EP.
Deployment builders (:mod:`repro.core.cluster`, the baselines) construct
one and hand it to every process so that role membership is common
knowledge — matching the paper's static membership assumption.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError

__all__ = ["SubCluster", "Topology", "shard_of_tenant"]


def shard_of_tenant(tenant: str, shards: int) -> int:
    """Deterministic tenant → shard routing key.

    sha256-based so the mapping is stable across processes and
    platforms (never ``hash()``, which is salted per interpreter).  The
    domain-separation prefix keeps this independent of any other sha256
    use of the bare tenant key (and happens to spread the conventional
    small ``t0``/``t1``/... keys across small shard counts).
    """
    if shards <= 1:
        return 0
    h = hashlib.sha256(("shard:" + tenant).encode("utf-8")).digest()
    return int.from_bytes(h[:8], "big") % shards


@dataclass(frozen=True)
class SubCluster:
    """A BFT verifier sub-cluster: 2f+1 (or 3f+1) member pids."""

    index: int
    members: tuple[str, ...]
    f: int

    def __post_init__(self) -> None:
        if len(self.members) < 2 * self.f + 1:
            raise NetworkError(
                f"sub-cluster {self.index} has {len(self.members)} members, "
                f"needs >= {2 * self.f + 1} for f={self.f}"
            )

    @property
    def quorum(self) -> int:
        """f+1 — the matching-message quorum used throughout the protocols."""
        return self.f + 1

    def leader_at(self, term: int) -> str:
        """Round-robin leader for a given election term."""
        return self.members[term % len(self.members)]


@dataclass
class Topology:
    """Immutable description of who plays which role.

    ``verifier_clusters[0]`` is always VP_CO, the coordinator sub-cluster
    ("one of the verifier sub-clusters is arbitrarily chosen", Sec 2).
    """

    input_pids: tuple[str, ...]
    output_pids: tuple[str, ...]
    executor_pids: tuple[str, ...]
    verifier_clusters: tuple[SubCluster, ...]
    f: int
    #: Number of tenant-routed IP/OP pipelines sharing the verifier
    #: fleet.  1 (default) is the legacy single-pipeline layout; when
    #: > 1, pipeline i is (input_pids[i], output_pids[i]) and completed
    #: output for a tenant is delivered only to its shard's OP.
    shards: int = 1

    def __post_init__(self) -> None:
        if not self.verifier_clusters:
            raise NetworkError("need at least one verifier sub-cluster (VP_CO)")
        all_pids = list(self.all_pids())
        if len(set(all_pids)) != len(all_pids):
            raise NetworkError("process ids overlap across roles")
        if self.shards < 1:
            raise NetworkError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1 and (
            len(self.input_pids) != self.shards
            or len(self.output_pids) != self.shards
        ):
            raise NetworkError(
                f"sharded topology needs exactly {self.shards} input and "
                f"output pids, got {len(self.input_pids)}/"
                f"{len(self.output_pids)}"
            )

    # ------------------------------------------------------------- accessors
    @property
    def coordinator(self) -> SubCluster:
        """VP_CO — linearizes tasks and coordinates the cluster."""
        return self.verifier_clusters[0]

    @property
    def worker_clusters(self) -> tuple[SubCluster, ...]:
        """Verifier sub-clusters available for record verification.

        VP_CO is "one of the verifier sub-clusters" (Sec 2) — it
        coordinates *in addition to* verifying, so every cluster is in
        the verification rotation (coordination runs on the dedicated
        control core).
        """
        return self.verifier_clusters

    def all_verifier_pids(self) -> tuple[str, ...]:
        """All verifier pids across sub-clusters, coordinator first."""
        out: list[str] = []
        for vc in self.verifier_clusters:
            out.extend(vc.members)
        return tuple(out)

    def worker_pids(self) -> tuple[str, ...]:
        """WP = EP ∪ VP — every process that maintains application state."""
        return tuple(self.executor_pids) + self.all_verifier_pids()

    def all_pids(self) -> tuple[str, ...]:
        """Every process in the deployment."""
        return (
            tuple(self.input_pids)
            + tuple(self.output_pids)
            + self.worker_pids()
        )

    def outputs_for(self, tenant: str) -> tuple[str, ...]:
        """Output pids a completion for ``tenant`` must be delivered to.

        Unsharded topologies (and untenanted tasks, which can only come
        from legacy workloads) broadcast to every OP — the exact legacy
        path.  Sharded topologies route to the tenant's single OP.
        """
        if self.shards <= 1 or not tenant:
            return tuple(self.output_pids)
        return (self.output_pids[shard_of_tenant(tenant, self.shards)],)

    def shard_of(self, tenant: str) -> int:
        """Shard index owning ``tenant`` (0 when unsharded)."""
        return shard_of_tenant(tenant, self.shards)

    def cluster_of(self, pid: str) -> Optional[SubCluster]:
        """The verifier sub-cluster containing ``pid``, if any."""
        for vc in self.verifier_clusters:
            if pid in vc.members:
                return vc
        return None

    def cluster(self, index: int) -> SubCluster:
        """Sub-cluster by index."""
        for vc in self.verifier_clusters:
            if vc.index == index:
                return vc
        raise NetworkError(f"no verifier sub-cluster with index {index}")
