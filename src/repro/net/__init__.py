"""Simulated network substrate: reliable FIFO links, NIC bandwidth model,
partial synchrony, non-equivocating multicast, topology descriptions."""

from repro.net.links import DEFAULT_BANDWIDTH, ByteMeter, Network, Nic
from repro.net.message import HEADER_BYTES, Message
from repro.net.partial_synchrony import SynchronyModel
from repro.net.topology import SubCluster, Topology

__all__ = [
    "ByteMeter",
    "DEFAULT_BANDWIDTH",
    "HEADER_BYTES",
    "Message",
    "Network",
    "Nic",
    "SubCluster",
    "SynchronyModel",
    "Topology",
]
