"""Simulated network substrate: reliable FIFO links, NIC bandwidth model,
partial synchrony, non-equivocating multicast, topology descriptions.

The link layer (and through it the DES kernel) loads lazily: protocol
modules import :mod:`repro.net.topology` / :mod:`repro.net.message`
without dragging the simulation substrate into their import graph.
"""

from repro.net.message import HEADER_BYTES, Message
from repro.net.partial_synchrony import SynchronyModel
from repro.net.topology import SubCluster, Topology

__all__ = [
    "ByteMeter",
    "DEFAULT_BANDWIDTH",
    "HEADER_BYTES",
    "Message",
    "Network",
    "Nic",
    "SubCluster",
    "SynchronyModel",
    "Topology",
]

_LINK_NAMES = ("ByteMeter", "DEFAULT_BANDWIDTH", "Network", "Nic")


def __getattr__(name: str):
    if name in _LINK_NAMES:
        from repro.net import links

        return getattr(links, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
