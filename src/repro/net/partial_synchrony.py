"""Partial synchrony model (Dwork-Lynch-Stockmeyer, as assumed in Sec 3).

The paper assumes a known Δ and an unknown global synchronization time
(GST): after GST every message between correct processes arrives within Δ.
We model propagation latency as a deterministic base plus seeded jitter;
before GST an additional adversarial delay (up to ``pre_gst_extra``) can be
applied, which the liveness tests use to show timeouts recover after GST.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkError

__all__ = ["SynchronyModel"]


@dataclass
class SynchronyModel:
    """Latency model with a GST switch.

    Parameters
    ----------
    base_latency:
        One-way propagation latency after GST, seconds.  Default matches
        the paper's testbed TCP ping of 0.075 ms (so one-way ≈ 37.5 µs).
    jitter:
        Uniform jitter added on top, seconds.
    gst:
        Global synchronization time; before it, messages may be delayed.
    pre_gst_extra:
        Maximum extra (adversarially chosen, here uniformly sampled) delay
        applied before GST.
    delta:
        The known Δ bound used by processes to set timeouts.  Must be an
        upper bound on ``base_latency + jitter`` for liveness after GST.
        :class:`~repro.net.links.Network` additionally validates the
        *composed* bound ``neq_latency_factor * (base_latency + jitter)``
        at construction, since the non-equivocating channel amplifies
        propagation latency and Δ must cover it too.
    """

    base_latency: float = 37.5e-6
    jitter: float = 5e-6
    gst: float = 0.0
    pre_gst_extra: float = 0.0
    delta: float = 1e-3

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.jitter < 0 or self.pre_gst_extra < 0:
            raise NetworkError("latencies must be non-negative")
        if self.delta < self.post_gst_bound():
            raise NetworkError(
                "delta must bound post-GST latency "
                f"(delta={self.delta}, max latency={self.post_gst_bound()})"
            )

    def post_gst_bound(self) -> float:
        """Worst-case post-GST propagation latency the model can produce,
        before any channel amplification (e.g. the neq premium)."""
        return self.base_latency + self.jitter

    def sample(self, now: float, rng: np.random.Generator) -> float:
        """One-way propagation delay for a message sent at ``now``."""
        lat = self.base_latency
        if self.jitter > 0:
            lat += float(rng.uniform(0.0, self.jitter))
        if now < self.gst and self.pre_gst_extra > 0:
            lat += float(rng.uniform(0.0, self.pre_gst_extra))
        return lat

    def synchronous_bound(self, now: float) -> float:
        """Worst-case latency the *model* can produce at ``now``.

        Processes must not use this (they only know Δ); it exists for test
        assertions.
        """
        lat = self.post_gst_bound()
        if now < self.gst:
            lat += self.pre_gst_extra
        return lat
