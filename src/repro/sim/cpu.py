"""Multi-core CPU model for simulated processes.

The paper's testbed gives each node 8 logical cores; one is reserved for
network operations and the rest run application work (Sec 7, "System
Details").  We model a node's compute as a bank of cores, each with a
"next free" timestamp.  Submitting a job picks the earliest-free core,
occupies it for the job's cost, and schedules the completion callback —
i.e. an M/G/c queue evaluated exactly, not stochastically.

Utilization accounting feeds the Sec 7.2 bottleneck-profiling bench
(executor CPU usage of 93–95% for HL vs 79–84% for LH/MM).  The
accounting obeys a conservation law that the sanitizer
(:mod:`repro.check`) audits after every sanitized run: once the bank is
drained, ``busy_seconds == completed_seconds + cancelled_busy_seconds``
— every charged core-second either ran to completion or was consumed by
a job before its cancellation; the unrun remainder of cancelled jobs is
rolled back at cancel time.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.events import CpuCancel, CpuSpan
from repro.sim.kernel import EventHandle, Simulator

__all__ = ["CpuBank", "JobHandle"]


class JobHandle(EventHandle):
    """Completion handle of one submitted job.

    ``time`` (inherited) is the completion time.  Cancelling a job that
    has not completed releases its core: the unrun remainder is
    un-charged from the bank's ``busy_seconds`` and, when the job is
    still the last one queued on its core, the core's next-free time
    rewinds so later submissions reuse the slot — a task reassigned away
    from an executor must not keep blocking the core or inflating its
    utilization.
    """

    __slots__ = ("bank", "core", "start", "cost")

    def __init__(
        self, time: float, bank: "CpuBank", core: int, start: float, cost: float
    ) -> None:
        super().__init__(time)
        self.bank = bank
        self.core = core
        self.start = start
        self.cost = cost

    def cancel(self) -> None:
        """Cancel the job, rolling back unrun occupancy.  Idempotent;
        cancelling a completed job is a no-op."""
        if not self._alive:
            return
        self._alive = False
        sim = self._sim
        if sim is not None:
            sim._live -= 1
        self.bank._rollback(self)


class CpuBank:
    """A bank of identical cores owned by one simulated process.

    Parameters
    ----------
    sim:
        The owning simulator.
    cores:
        Number of cores available for application work (the paper reserves
        one core per node for networking; deployments pass ``cores - 1``).
    owner:
        Process id stamped on emitted :class:`~repro.obs.events.CpuSpan`
        trace events (empty for anonymous banks, e.g. in unit tests).
    name:
        Bank label in trace events ("app"/"ctrl" for process banks).
    """

    def __init__(
        self, sim: Simulator, cores: int, owner: str = "", name: str = "cpu"
    ) -> None:
        if cores < 1:
            raise SimulationError(f"CpuBank needs >=1 core, got {cores}")
        self.sim = sim
        self.cores = cores
        self.owner = owner
        self.name = name
        self._free_at = [0.0] * cores
        self.busy_seconds = 0.0
        #: core-seconds of jobs whose completion callback fired
        self.completed_seconds = 0.0
        #: core-seconds reclaimed from cancelled jobs (their unrun tail)
        self.cancelled_seconds = 0.0
        #: core-seconds cancelled jobs actually ran before cancellation
        self.cancelled_busy_seconds = 0.0
        self._jobs_done = 0
        self._jobs_completed = 0
        self._jobs_cancelled = 0

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        cost: float,
        on_done: Callable[..., None],
        *args: Any,
    ) -> JobHandle:
        """Run a job costing ``cost`` simulated seconds of one core.

        The job starts on the earliest-available core (possibly immediately)
        and ``on_done(*args)`` fires at completion.  Returns the completion
        :class:`JobHandle` so callers can cancel in-flight work (used when a
        task is reassigned away from an executor).
        """
        if cost < 0:
            raise SimulationError(f"negative job cost {cost}")
        free_at = self._free_at
        if self.cores == 1:
            idx = 0
        else:
            idx = free_at.index(min(free_at))
        start = free_at[idx]
        now = self.sim.now
        if now > start:
            start = now
        end = start + cost
        free_at[idx] = end
        self.busy_seconds += cost
        self._jobs_done += 1
        bus = self.sim.bus
        if cost > 0 and bus._want_cpu:
            bus.emit(
                CpuSpan(
                    time=start, pid=self.owner, bank=self.name, core=idx, end=end
                )
            )
        handle = JobHandle(end, self, idx, start, cost)
        self.sim.schedule_at(end, self._complete, cost, on_done, *args, handle=handle)
        return handle

    def _complete(self, cost: float, on_done: Callable[..., None], *args: Any) -> None:
        self.completed_seconds += cost
        self._jobs_completed += 1
        on_done(*args)

    def _rollback(self, handle: JobHandle) -> None:
        """Release the unrun remainder of a cancelled job (JobHandle.cancel).

        A job cancelled before its start reclaims the full cost; one
        cancelled mid-run keeps the consumed prefix charged.  The core's
        next-free time rewinds only when the job is still the tail of its
        core's queue — completions of jobs submitted after it are already
        scheduled at fixed times, so their occupancy cannot shift.
        """
        now = self.sim.now
        start, end, cost = handle.start, handle.time, handle.cost
        consumed = 0.0
        if now > start:
            consumed = (now if now < end else end) - start
        reclaimed = cost - consumed
        self._jobs_cancelled += 1
        self.cancelled_busy_seconds += consumed
        if reclaimed <= 0.0:
            return
        self.busy_seconds -= reclaimed
        self.cancelled_seconds += reclaimed
        if self._free_at[handle.core] == end:
            self._free_at[handle.core] = start + consumed
        bus = self.sim.bus
        if cost > 0 and bus._want_cpu:
            bus.emit(
                CpuCancel(
                    time=now,
                    pid=self.owner,
                    bank=self.name,
                    core=handle.core,
                    end=end,
                    reclaimed=reclaimed,
                )
            )

    # ------------------------------------------------------------ inspection
    def earliest_free(self) -> float:
        """Simulated time when the next core becomes available."""
        return max(self.sim.now, min(self._free_at))

    def backlog_seconds(self) -> float:
        """Total queued work beyond `now`, summed over cores."""
        return sum(max(0.0, t - self.sim.now) for t in self._free_at)

    def utilization(self, window_start: float, window_end: float) -> float:
        """Average busy fraction over a window, from cumulative busy time.

        Only meaningful when called at ``sim.now >= window_end`` on a bank
        whose load was observed across the whole window; the benchmark
        harness snapshots ``busy_seconds`` at window boundaries instead of
        using this directly when it needs per-window numbers.
        """
        if window_end <= window_start:
            raise SimulationError("empty utilization window")
        return min(
            1.0, self.busy_seconds / ((window_end - window_start) * self.cores)
        )

    @property
    def jobs_done(self) -> int:
        """Number of jobs ever submitted to this bank."""
        return self._jobs_done

    @property
    def jobs_completed(self) -> int:
        """Number of jobs whose completion callback fired."""
        return self._jobs_completed

    @property
    def jobs_cancelled(self) -> int:
        """Number of jobs cancelled before completion."""
        return self._jobs_cancelled
