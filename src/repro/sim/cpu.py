"""Multi-core CPU model for simulated processes.

The paper's testbed gives each node 8 logical cores; one is reserved for
network operations and the rest run application work (Sec 7, "System
Details").  We model a node's compute as a bank of cores, each with a
"next free" timestamp.  Submitting a job picks the earliest-free core,
occupies it for the job's cost, and schedules the completion callback —
i.e. an M/G/c queue evaluated exactly, not stochastically.

Utilization accounting feeds the Sec 7.2 bottleneck-profiling bench
(executor CPU usage of 93–95% for HL vs 79–84% for LH/MM).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.events import CATEGORY_CPU, CpuSpan
from repro.sim.kernel import EventHandle, Simulator

__all__ = ["CpuBank"]


class CpuBank:
    """A bank of identical cores owned by one simulated process.

    Parameters
    ----------
    sim:
        The owning simulator.
    cores:
        Number of cores available for application work (the paper reserves
        one core per node for networking; deployments pass ``cores - 1``).
    owner:
        Process id stamped on emitted :class:`~repro.obs.events.CpuSpan`
        trace events (empty for anonymous banks, e.g. in unit tests).
    name:
        Bank label in trace events ("app"/"ctrl" for process banks).
    """

    def __init__(
        self, sim: Simulator, cores: int, owner: str = "", name: str = "cpu"
    ) -> None:
        if cores < 1:
            raise SimulationError(f"CpuBank needs >=1 core, got {cores}")
        self.sim = sim
        self.cores = cores
        self.owner = owner
        self.name = name
        self._free_at = [0.0] * cores
        self.busy_seconds = 0.0
        self._jobs_done = 0

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        cost: float,
        on_done: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Run a job costing ``cost`` simulated seconds of one core.

        The job starts on the earliest-available core (possibly immediately)
        and ``on_done(*args)`` fires at completion.  Returns the completion
        event handle so callers can cancel in-flight work (used when a task
        is reassigned away from an executor).
        """
        if cost < 0:
            raise SimulationError(f"negative job cost {cost}")
        free_at = self._free_at
        if self.cores == 1:
            idx = 0
        else:
            idx = free_at.index(min(free_at))
        start = free_at[idx]
        now = self.sim.now
        if now > start:
            start = now
        end = start + cost
        free_at[idx] = end
        self.busy_seconds += cost
        self._jobs_done += 1
        bus = self.sim.bus
        if cost > 0 and bus.wants(CATEGORY_CPU):
            bus.emit(
                CpuSpan(
                    time=start, pid=self.owner, bank=self.name, core=idx, end=end
                )
            )
        return self.sim.schedule_at(end, on_done, *args)

    # ------------------------------------------------------------ inspection
    def earliest_free(self) -> float:
        """Simulated time when the next core becomes available."""
        return max(self.sim.now, min(self._free_at))

    def backlog_seconds(self) -> float:
        """Total queued work beyond `now`, summed over cores."""
        return sum(max(0.0, t - self.sim.now) for t in self._free_at)

    def utilization(self, window_start: float, window_end: float) -> float:
        """Average busy fraction over a window, from cumulative busy time.

        Only meaningful when called at ``sim.now >= window_end`` on a bank
        whose load was observed across the whole window; the benchmark
        harness snapshots ``busy_seconds`` at window boundaries instead of
        using this directly when it needs per-window numbers.
        """
        if window_end <= window_start:
            raise SimulationError("empty utilization window")
        return min(
            1.0, self.busy_seconds / ((window_end - window_start) * self.cores)
        )

    @property
    def jobs_done(self) -> int:
        """Number of jobs ever submitted to this bank."""
        return self._jobs_done
