"""Discrete-event simulation (DES) kernel.

The whole OsirisBFT reproduction runs on this kernel: processes, network
links, CPUs and timeouts are all modeled as events on a single priority
queue, keyed by simulated time.  The kernel is **deterministic**: given the
same seed and the same sequence of `schedule` calls, two runs produce
identical traces.  Determinism is what lets the test-suite make exact
assertions about Byzantine scenarios, and it follows the "make it work
reliably before optimizing" workflow from the scientific-Python guides.

Design notes
------------
* Events with equal timestamps are ordered by insertion sequence number, so
  ties never compare the (unorderable) callback objects and FIFO semantics
  hold for same-time events.
* Queue entries are plain ``(time, seq, handle, fn, args)`` tuples: heap
  ordering is native tuple comparison (the unique ``seq`` breaks every
  time tie before the unorderable fields are reached), with no per-event
  wrapper object on the hot path.
* Cancellation is O(1): a handle is flagged dead and skipped when popped,
  which keeps the hot loop a plain ``heappush``/``heappop`` pair.  Events
  that can never be cancelled (message deliveries) use :meth:`Simulator.post_at`
  and carry no handle at all.
* There is no wall-clock anywhere; simulated seconds are just floats.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.bus import EventBus
from repro.obs.events import KernelEventFired

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Cancellable reference to a scheduled event.

    Handles are returned by :meth:`Simulator.schedule`; protocols keep them
    for timeouts (e.g. speculative task reassignment) and cancel them when
    the awaited message arrives.
    """

    __slots__ = ("_alive", "time")

    def __init__(self, time: float) -> None:
        self._alive = True
        self.time = time

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; cancelling a fired event is a no-op."""
        self._alive = False


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the root RNG.  Every component derives child RNGs via
        :meth:`rng` keyed by a stable name, so adding a new consumer never
        perturbs the random stream of existing ones.
    bus:
        Observability bus shared by everything running on this simulator
        (a fresh one is created when omitted).  Sinks attached to it see
        trace events from every layer; with no sinks attached, emission
        sites skip event construction entirely.
    """

    def __init__(self, seed: int = 0, bus: Optional[EventBus] = None) -> None:
        self.now: float = 0.0
        self.bus = bus if bus is not None else EventBus()
        # heap of (time, seq, handle-or-None, fn, args); None = uncancellable
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------ rng
    def rng(self, name: str) -> np.random.Generator:
        """Return the named child RNG (created on first use).

        Child streams are independent (``spawn_key`` derived from the name)
        and stable across runs for a fixed seed.
        """
        if name not in self._rngs:
            # stable digest, NOT hash(): Python string hashing is salted
            # per process, which would silently break cross-run determinism
            import hashlib

            key = int.from_bytes(
                hashlib.sha256(name.encode()).digest()[:4], "big"
            )
            child = np.random.SeedSequence(self._seed, spawn_key=(key,))
            self._rngs[name] = np.random.default_rng(child)
        return self._rngs[name]

    # ------------------------------------------------------------- schedule
    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        handle: Optional[EventHandle] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        Callers that need a specialized handle (e.g. the CPU bank's
        :class:`~repro.sim.cpu.JobHandle`, whose ``cancel`` rolls back
        occupancy) pass a pre-built one via ``handle``; it must carry the
        same ``time``.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        if handle is None:
            handle = EventHandle(time)
        heapq.heappush(self._queue, (time, next(self._seq), handle, fn, args))
        return handle

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule an *uncancellable* ``fn(*args)`` at an absolute time.

        The fast path for events that never need a handle (e.g. message
        deliveries): no :class:`EventHandle` is allocated.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), None, fn, args))

    # ------------------------------------------------------------------ run
    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if queue is empty."""
        queue = self._queue
        while queue:
            time_, _, handle, fn, args = heapq.heappop(queue)
            if handle is not None:
                if not handle._alive:
                    continue
                handle._alive = False
            self.now = time_
            self._events_fired += 1
            bus = self.bus
            if bus._want_kernel:
                bus.emit(
                    KernelEventFired(
                        time=time_, pid="kernel", count=self._events_fired
                    )
                )
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When stopped by ``until``, ``now`` is advanced to exactly ``until``
        and remaining events stay queued, so the run can be resumed.
        ``max_events`` counts events actually *fired* — the same notion
        :attr:`events_fired` reports — so the two always agree.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        stop_at = None if max_events is None else self._events_fired + max_events
        queue = self._queue
        heappop = heapq.heappop
        bus = self.bus
        try:
            while queue:
                if stop_at is not None and self._events_fired >= stop_at:
                    return
                head = queue[0]
                handle = head[2]
                if handle is not None and not handle._alive:
                    heappop(queue)
                    continue
                time_ = head[0]
                if until is not None and time_ > until:
                    self.now = until
                    return
                heappop(queue)
                if handle is not None:
                    handle._alive = False
                self.now = time_
                self._events_fired += 1
                if bus._want_kernel:
                    bus.emit(
                        KernelEventFired(
                            time=time_, pid="kernel", count=self._events_fired
                        )
                    )
                head[3](*head[4])
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------ inspection
    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return sum(
            1 for ev in self._queue if ev[2] is None or ev[2]._alive
        )

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def drained(self) -> bool:
        """True when no live events remain."""
        return self.pending_events == 0
