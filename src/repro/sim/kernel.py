"""Discrete-event simulation (DES) kernel.

The whole OsirisBFT reproduction runs on this kernel: processes, network
links, CPUs and timeouts are all modeled as events on a single priority
queue, keyed by simulated time.  The kernel is **deterministic**: given the
same seed and the same sequence of `schedule` calls, two runs produce
identical traces.  Determinism is what lets the test-suite make exact
assertions about Byzantine scenarios, and it follows the "make it work
reliably before optimizing" workflow from the scientific-Python guides.

Design notes
------------
* Events with equal timestamps are ordered by insertion sequence number, so
  ties never compare the (unorderable) callback objects and FIFO semantics
  hold for same-time events.
* Queue entries are plain ``(time, seq, handle, fn, args)`` tuples: ordering
  is native tuple comparison (the unique ``seq`` breaks every time tie
  before the unorderable fields are reached), with no per-event wrapper
  object on the hot path.
* Two pending stores, one logical queue.  Besides the binary heap there is
  a **near-future lane**: an append-only list that stays sorted as long as
  schedule times arrive in non-decreasing order (the common case for
  periodic timers and streamed deliveries).  An in-order event costs one
  ``list.append`` instead of an ``O(log n)`` ``heappush``; an out-of-order
  event falls through to the heap.  Dispatch merges the two sorted sources
  by ``(time, seq)``, so observable fire order is identical to a single
  heap.
* :meth:`Simulator.run` dispatches in **batches**: the maximal run of
  same-timestamp events is drained into a reusable scratch list in one
  pass (purging dead cancelled entries in bulk along the way) and fired
  without re-entering the heap per event.  Liveness is re-checked at fire
  time, so an event cancelled by an earlier event of the same batch never
  fires.  :meth:`step` keeps the original single-event semantics and is
  the reference the batch dispatcher is property-tested against.
* Cancellation is O(1): a handle is flagged dead and skipped when reached,
  which keeps the hot loop free of heap surgery.  Events that can never be
  cancelled (message deliveries) use :meth:`Simulator.post_at` and carry
  no handle at all.  :attr:`Simulator.pending_events` is an O(1) live
  counter maintained on schedule/fire/cancel, not a queue scan.
* There is no wall-clock anywhere; simulated seconds are just floats.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.bus import EventBus
from repro.obs.events import KernelEventFired

__all__ = ["EventHandle", "Simulator"]

#: Consumed near-future-lane prefix length that triggers compaction.
_LANE_COMPACT = 4096
#: Dispatch batches between maintenance passes (dead-entry compaction
#: check + registered batch hooks).  Power of two: the check is a mask.
_MAINTENANCE_STRIDE = 64
#: Dead-entry count (and fraction of the queue) that triggers a bulk
#: rebuild of the pending stores.
_DEAD_COMPACT = 1024


class EventHandle:
    """Cancellable reference to a scheduled event.

    Handles are returned by :meth:`Simulator.schedule`; protocols keep them
    for timeouts (e.g. speculative task reassignment) and cancel them when
    the awaited message arrives.
    """

    __slots__ = ("_alive", "time", "_sim")

    def __init__(self, time: float) -> None:
        self._alive = True
        self.time = time
        # owning simulator, set when scheduled: cancel() must keep the
        # simulator's O(1) live-event counter exact
        self._sim: Optional["Simulator"] = None

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; cancelling a fired event is a no-op."""
        if self._alive:
            self._alive = False
            sim = self._sim
            if sim is not None:
                sim._live -= 1


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the root RNG.  Every component derives child RNGs via
        :meth:`rng` keyed by a stable name, so adding a new consumer never
        perturbs the random stream of existing ones.
    bus:
        Observability bus shared by everything running on this simulator
        (a fresh one is created when omitted).  Sinks attached to it see
        trace events from every layer; with no sinks attached, emission
        sites skip event construction entirely.
    """

    def __init__(self, seed: int = 0, bus: Optional[EventBus] = None) -> None:
        self.now: float = 0.0
        self.bus = bus if bus is not None else EventBus()
        # heap of (time, seq, handle-or-None, fn, args); None = uncancellable
        self._queue: list[tuple] = []
        # near-future lane: sorted pending buffer consumed from _lane_pos;
        # in-order schedules append here, out-of-order ones go to the heap
        self._lane: list[tuple] = []
        self._lane_pos = 0
        # reusable scratch list the batch dispatcher drains same-time runs
        # into (never reallocated across batches)
        self._batch: list[tuple] = []
        self._seq = 0
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self._running = False
        self._events_fired = 0
        # O(1) count of live (scheduled, not fired, not cancelled) events
        self._live = 0
        self._batches = 0
        # maintenance callbacks run between dispatch batches (amortized by
        # _MAINTENANCE_STRIDE); must be passive with respect to the
        # simulation — see add_batch_hook
        self._batch_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------ rng
    def rng(self, name: str) -> np.random.Generator:
        """Return the named child RNG (created on first use).

        Child streams are independent (``spawn_key`` derived from the name)
        and stable across runs for a fixed seed.
        """
        if name not in self._rngs:
            # stable digest, NOT hash(): Python string hashing is salted
            # per process, which would silently break cross-run determinism
            key = int.from_bytes(
                hashlib.sha256(name.encode()).digest()[:4], "big"
            )
            child = np.random.SeedSequence(self._seed, spawn_key=(key,))
            self._rngs[name] = np.random.default_rng(child)
        return self._rngs[name]

    # ------------------------------------------------------------- schedule
    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        handle: Optional[EventHandle] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        Callers that need a specialized handle (e.g. the CPU bank's
        :class:`~repro.sim.cpu.JobHandle`, whose ``cancel`` rolls back
        occupancy) pass a pre-built one via ``handle``; it must carry the
        same ``time``.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        if handle is None:
            handle = EventHandle(time)
        handle._sim = self
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, handle, fn, args)
        lane = self._lane
        if not lane or time >= lane[-1][0]:
            lane.append(entry)
        else:
            heapq.heappush(self._queue, entry)
        self._live += 1
        return handle

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule an *uncancellable* ``fn(*args)`` at an absolute time.

        The fast path for events that never need a handle (e.g. message
        deliveries): no :class:`EventHandle` is allocated.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, None, fn, args)
        lane = self._lane
        if not lane or time >= lane[-1][0]:
            lane.append(entry)
        else:
            heapq.heappush(self._queue, entry)
        self._live += 1

    # ------------------------------------------------------------ batch hooks
    def add_batch_hook(self, fn: Callable[[], None]) -> None:
        """Register a maintenance callback run between dispatch batches.

        Hooks are invoked every ``_MAINTENANCE_STRIDE`` batches, outside
        any event callback.  They must be **passive**: no scheduling, no
        RNG, no observable state changes — the intended use is amortized
        garbage collection of auxiliary structures (e.g. the network's
        per-link FIFO-tail map), which cannot perturb the event timeline.
        """
        self._batch_hooks.append(fn)

    # ---------------------------------------------------------- lane plumbing
    def _flush_lane(self) -> None:
        """Spill the unconsumed lane suffix into the heap (slow paths only)."""
        lane = self._lane
        pos = self._lane_pos
        if pos < len(lane):
            queue = self._queue
            push = heapq.heappush
            for i in range(pos, len(lane)):
                push(queue, lane[i])
        lane.clear()
        self._lane_pos = 0

    def _compact(self) -> None:
        """Rebuild the pending stores, dropping dead cancelled entries.

        Called from the maintenance pass when cancelled-but-unpopped
        entries dominate the queue, so long runs with heavy timer churn
        do not accumulate unbounded dead weight.
        """
        alive = [
            e
            for e in self._queue
            if e[2] is None or e[2]._alive
        ]
        lane = self._lane
        for i in range(self._lane_pos, len(lane)):
            e = lane[i]
            if e[2] is None or e[2]._alive:
                alive.append(e)
        heapq.heapify(alive)
        self._queue = alive
        lane.clear()
        self._lane_pos = 0

    # ------------------------------------------------------------------ run
    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if queue is empty.

        This is the reference single-event dispatcher: the batched
        :meth:`run` is property-tested to fire the exact same sequence.
        """
        self._flush_lane()
        queue = self._queue
        while queue:
            time_, _, handle, fn, args = heapq.heappop(queue)
            if handle is not None:
                if not handle._alive:
                    continue
                handle._alive = False
            self.now = time_
            self._events_fired += 1
            self._live -= 1
            bus = self.bus
            if bus._want_kernel:
                bus.emit(
                    KernelEventFired(
                        time=time_, pid="kernel", count=self._events_fired
                    )
                )
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When stopped by ``until``, ``now`` is advanced to exactly ``until``
        and remaining events stay queued, so the run can be resumed.
        ``max_events`` counts events actually *fired* — the same notion
        :attr:`events_fired` reports — so the two always agree.

        Dispatch is batched: each iteration drains the maximal run of
        same-timestamp events (respecting ``max_events``) into a scratch
        list and fires them back-to-back.  Events scheduled *by* a batch
        at the same timestamp carry higher sequence numbers than anything
        drained, so collecting them in a follow-up batch preserves exact
        single-step fire order; cancellations from inside the batch are
        honoured by re-checking handle liveness at fire time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        stop_at = None if max_events is None else self._events_fired + max_events
        queue = self._queue
        lane = self._lane
        batch = self._batch
        heappop = heapq.heappop
        heappush = heapq.heappush
        bus = self.bus
        try:
            while True:
                # -------- head selection, purging dead entries in bulk
                while queue:
                    h = queue[0][2]
                    if h is None or h._alive:
                        break
                    heappop(queue)
                pos = self._lane_pos
                nlane = len(lane)
                while pos < nlane:
                    h = lane[pos][2]
                    if h is None or h._alive:
                        break
                    pos += 1
                if pos >= nlane:
                    if nlane:
                        lane.clear()
                    pos = nlane = 0
                elif pos > _LANE_COMPACT:
                    del lane[:pos]
                    nlane -= pos
                    pos = 0
                self._lane_pos = pos
                if queue:
                    if pos < nlane and lane[pos] < queue[0]:
                        time_ = lane[pos][0]
                    else:
                        time_ = queue[0][0]
                elif pos < nlane:
                    time_ = lane[pos][0]
                else:
                    break
                if until is not None and time_ > until:
                    self.now = until
                    return
                if stop_at is not None and self._events_fired >= stop_at:
                    return
                # -------- fire the maximal same-time run
                # Three shapes.  The common ones — the whole run lives in
                # one source — fire in place with no merge bookkeeping:
                # a lane run is a contiguous slice consumed by advancing
                # _lane_pos, a heap run pops-and-fires like the reference
                # step().  Only when *both* sources hold events at time_
                # is the run merged by (time, seq) into the scratch batch.
                room = -1 if stop_at is None else stop_at - self._events_fired
                self.now = time_
                heap_run = bool(queue) and queue[0][0] == time_
                lane_run = pos < nlane and lane[pos][0] == time_
                if lane_run and not heap_run:
                    j = pos + 1
                    while j < nlane and lane[j][0] == time_:
                        j += 1
                    i = pos
                    try:
                        while i < j:
                            e = lane[i]
                            i += 1
                            h = e[2]
                            if h is not None:
                                if not h._alive:
                                    continue
                                h._alive = False
                            self._live -= 1
                            fired = self._events_fired = self._events_fired + 1
                            if bus._want_kernel:
                                bus.emit(
                                    KernelEventFired(
                                        time=time_, pid="kernel", count=fired
                                    )
                                )
                            e[3](*e[4])
                            if room > 0:
                                room -= 1
                                if room == 0:
                                    break
                    finally:
                        # unfired tail (exception / max_events) stays in
                        # the lane, still sorted, resumed next iteration
                        self._lane_pos = i
                elif heap_run and not lane_run:
                    # only entries that existed at run start (seq below
                    # the current counter) belong to this run: events
                    # scheduled *by* callbacks defer to the next outer
                    # iteration, whose merge restores global seq order
                    # against any same-time lane appends
                    seq_limit = self._seq
                    while (
                        queue
                        and queue[0][0] == time_
                        and queue[0][1] < seq_limit
                    ):
                        e = heappop(queue)
                        h = e[2]
                        if h is not None:
                            if not h._alive:
                                continue
                            h._alive = False
                        self._live -= 1
                        fired = self._events_fired = self._events_fired + 1
                        if bus._want_kernel:
                            bus.emit(
                                KernelEventFired(
                                    time=time_, pid="kernel", count=fired
                                )
                            )
                        e[3](*e[4])
                        if room > 0:
                            room -= 1
                            if room == 0:
                                break
                else:
                    # mixed: drain the run from both sources in (time,
                    # seq) order into the scratch batch, then fire
                    while True:
                        if queue and queue[0][0] == time_:
                            if (
                                pos < nlane
                                and lane[pos][0] == time_
                                and lane[pos][1] < queue[0][1]
                            ):
                                e = lane[pos]
                                pos += 1
                            else:
                                e = heappop(queue)
                        elif pos < nlane and lane[pos][0] == time_:
                            e = lane[pos]
                            pos += 1
                        else:
                            break
                        h = e[2]
                        if h is None or h._alive:
                            batch.append(e)
                            room -= 1
                            if room == 0:
                                break
                    self._lane_pos = pos
                    i = 0
                    n = len(batch)
                    try:
                        while i < n:
                            e = batch[i]
                            i += 1
                            h = e[2]
                            if h is not None:
                                if not h._alive:
                                    continue
                                h._alive = False
                            self._live -= 1
                            fired = self._events_fired = self._events_fired + 1
                            if bus._want_kernel:
                                bus.emit(
                                    KernelEventFired(
                                        time=time_, pid="kernel", count=fired
                                    )
                                )
                            e[3](*e[4])
                    finally:
                        if i < n:
                            # an event callback raised: requeue the unfired
                            # tail (original (time, seq) keys restore order)
                            for e in batch[i:]:
                                heappush(queue, e)
                        batch.clear()
                # -------- amortized maintenance
                batches = self._batches = self._batches + 1
                if not batches % _MAINTENANCE_STRIDE:
                    dead = (
                        len(queue) + len(lane) - self._lane_pos - self._live
                    )
                    if dead > _DEAD_COMPACT and dead * 2 > len(queue):
                        self._compact()
                    for hook in self._batch_hooks:
                        hook()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------ inspection
    @property
    def pending_events(self) -> int:
        """Number of live events still queued (O(1) maintained counter)."""
        return self._live

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def drained(self) -> bool:
        """True when no live events remain."""
        return self._live == 0
