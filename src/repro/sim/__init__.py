"""Deterministic discrete-event simulation substrate.

This package is the stand-in for the paper's 40-node Docker/Infiniband
testbed: simulated time, simulated CPUs, and (via :mod:`repro.net`)
simulated links let the protocols run unmodified while every benchmark
remains laptop-sized and exactly reproducible.
"""

from repro.sim.cpu import CpuBank
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.process import SimProcess

__all__ = ["CpuBank", "EventHandle", "Simulator", "SimProcess"]
