"""Base class for simulated processes.

Every actor bound to the DES — protocol cores via
:class:`repro.runtime.des.DesHost`, plus bare processes in unit tests —
derives from :class:`SimProcess`.  A process owns a CPU bank, receives
messages dispatched by type, and can arm cancellable timers (the
building block for reassignment timeouts, negligent-leader timeouts,
and role-switching control loops).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.cpu import CpuBank
from repro.sim.kernel import EventHandle, Simulator

__all__ = ["SimProcess"]


class SimProcess:
    """A named simulated process with CPU and message dispatch.

    Subclasses implement handlers named ``on_<MessageType>`` (matching the
    message class name, see :mod:`repro.net.message`); they are collected
    into a dispatch table once at construction and :meth:`deliver` routes
    incoming messages through it — no per-delivery string ``getattr``.
    Unknown message types are counted and dropped — a correct process must
    tolerate garbage from Byzantine peers, so an unexpected type is never
    an error.
    """

    def __init__(self, sim: Simulator, pid: str, cores: int = 7) -> None:
        self.sim = sim
        self.pid = pid
        self.cpu = CpuBank(sim, cores, owner=pid, name="app")
        #: control-plane core: the paper dedicates one core per node to
        #: "network operations" (Sec 7); protocol-critical work (consensus
        #: signing, acks) runs here so it never queues behind long
        #: application jobs on the worker cores.
        self.ctrl = CpuBank(sim, 1, owner=pid, name="ctrl")
        self.crashed = False
        self.unhandled_messages = 0
        self._timers: dict[str, EventHandle] = {}
        handlers: dict[str, Callable[..., None]] = {}
        for name in dir(type(self)):
            if name.startswith("on_"):
                handlers[name[3:]] = getattr(self, name)
        self._handlers = handlers

    @property
    def bus(self):
        """The deployment's observability bus (owned by the simulator)."""
        return self.sim.bus

    # ------------------------------------------------------------- messaging
    def deliver(self, msg: Any) -> None:
        """Entry point the network calls when a message arrives."""
        if self.crashed:
            return
        handler = self._handlers.get(type(msg).__name__)
        if handler is None:
            self.unhandled_messages += 1
            return
        handler(msg)

    # ---------------------------------------------------------------- timers
    def set_timer(
        self, name: str, delay: float, fn: Callable[..., None], *args: Any
    ) -> Optional[EventHandle]:
        """Arm (or re-arm) a named timer.  Re-arming cancels the old one.

        A crashed process cannot arm timers (returns ``None``): a crash
        must permanently silence the process even if some stale callback
        still holds a reference to it.  Fired timers remove themselves
        from the table, so long-lived processes don't accumulate dead
        handles and ``cancel_timer`` after the fire is a clean no-op.
        """
        self.cancel_timer(name)
        if self.crashed:
            return None

        def fire(*fire_args: Any) -> None:
            if self._timers.get(name) is handle:
                del self._timers[name]
            if not self.crashed:
                fn(*fire_args)

        handle = self.sim.schedule(delay, fire, *args)
        self._timers[name] = handle
        return handle

    def cancel_timer(self, name: str) -> None:
        """Cancel a named timer if armed; no-op otherwise (including for
        timers that already fired or were never armed)."""
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def timer_armed(self, name: str) -> bool:
        """Whether a live timer with this name exists."""
        handle = self._timers.get(name)
        return handle is not None and handle.alive

    def _guard(self, fn: Callable[..., None]) -> Callable[..., None]:
        def run(*args: Any) -> None:
            if not self.crashed:
                fn(*args)

        return run

    # ------------------------------------------------------------------- cpu
    def run_job(
        self, cost: float, on_done: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Submit application CPU work; completion callback is crash-guarded."""
        return self.cpu.submit(cost, self._guard(on_done), *args)

    def run_ctrl_job(
        self, cost: float, on_done: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Submit protocol-plane work to the dedicated control core."""
        return self.ctrl.submit(cost, self._guard(on_done), *args)

    # ----------------------------------------------------------------- crash
    def crash(self) -> None:
        """Silence the process: drops all future messages, timers and jobs.

        Crash is one point in the Byzantine behaviour space; richer faults
        are injected via the strategies in :mod:`repro.core.faults`.
        """
        self.crashed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.pid}>"
