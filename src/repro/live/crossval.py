"""Cross-validation: DES and live runs of one spec must commit the same.

The live backend replays none of the DES's timing — queue latencies are
real, CPU lanes are emulated against the wall clock, reassignment
timers race actual execution.  What *must* coincide is the protocol
outcome the paper's safety theorem speaks about: the set of committed
``(task, chunk index) → record-content digest`` outcomes at the output
processes, and the set of completed tasks.  Chunk digests are content
digests (independent of which executor attempt produced them), and
quorum acceptance is exactly-once per slot, so two semantically correct
executions of one spec + seed agree on this map even when their
schedules differ wildly.

:func:`cross_validate` runs one :class:`~repro.api.DeploymentSpec`
under both backends and compares:

* identical commit outcomes (per-slot winning digests, completed task
  set, record counts),
* zero sanitizer violations on the DES side and zero conservation
  violations on the live side.

It deliberately does **not** compare traces byte-for-byte — wall-clock
scheduling makes that meaningless — nor performance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.input_output import OutputProcess
from repro.errors import BenchmarkError

__all__ = ["commit_outcomes", "CrossValReport", "cross_validate"]


def commit_outcomes(op: OutputProcess) -> dict:
    """Distil one output process's committed state into a comparable map.

    For every accepted chunk slot the *winning* digest is recovered from
    the endorsement table: the digest that reached quorum with its chunk
    data present — the exact acceptance condition of
    ``OutputProcess._try_accept``, which fires at most once per slot.
    """
    chunks: dict[str, str] = {}
    records: dict[str, int] = {}
    completed: list[str] = []
    for task_id, ot in op._tasks.items():
        if ot.completed:
            completed.append(task_id)
        if ot.vp_index < 0:
            continue
        quorum = op.topo.cluster(ot.vp_index).quorum
        for index, slot in ot.slots.items():
            if not slot.accepted:
                continue
            key = f"{task_id}:{index}"
            for sigma, endorsers in slot.endorsements.items():
                if len(endorsers) >= quorum and sigma in slot.data:
                    chunks[key] = sigma.hex()
                    records[key] = len(slot.data[sigma].records)
                    break
    return {
        "completed": sorted(completed),
        "chunks": chunks,
        "records": records,
        "chunks_accepted": op.chunks_accepted,
        "records_accepted": op.records_accepted,
    }


@dataclass
class CrossValReport:
    """Outcome of one DES-vs-live comparison."""

    spec_label: str
    des_commits: dict = field(default_factory=dict)
    live_commits: dict = field(default_factory=dict)
    des_violations: int = 0
    live_violations: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and self.des_violations == 0
            and self.live_violations == 0
        )

    def summary(self) -> str:
        if self.ok:
            ops = sorted(self.des_commits)
            slots = sum(
                len(self.des_commits[op]["chunks"]) for op in ops
            )
            return (
                f"cross-validation OK [{self.spec_label}]: "
                f"{len(ops)} OP(s), {slots} committed slot(s) identical, "
                f"0 violations"
            )
        lines = [f"cross-validation FAILED [{self.spec_label}]:"]
        lines.extend(f"  {m}" for m in self.mismatches[:20])
        if self.des_violations:
            lines.append(f"  DES sanitizer violations: {self.des_violations}")
        if self.live_violations:
            lines.append(f"  live conservation violations: {self.live_violations}")
        return "\n".join(lines)


def _diff_outcomes(des: dict, live: dict) -> list[str]:
    out: list[str] = []
    for op_pid in sorted(set(des) | set(live)):
        d, l = des.get(op_pid), live.get(op_pid)
        if d is None or l is None:
            out.append(f"{op_pid}: present only under {'live' if d is None else 'des'}")
            continue
        if d["completed"] != l["completed"]:
            out.append(
                f"{op_pid}: completed tasks differ "
                f"(des={d['completed']} live={l['completed']})"
            )
        for key in sorted(set(d["chunks"]) | set(l["chunks"])):
            dd, ll = d["chunks"].get(key), l["chunks"].get(key)
            if dd != ll:
                out.append(
                    f"{op_pid}: slot {key} digest des={dd and dd[:12]} "
                    f"live={ll and ll[:12]}"
                )
        if d["records"] != l["records"]:
            for key in sorted(set(d["records"]) | set(l["records"])):
                if d["records"].get(key) != l["records"].get(key):
                    out.append(
                        f"{op_pid}: slot {key} record count "
                        f"des={d['records'].get(key)} live={l['records'].get(key)}"
                    )
    return out


def cross_validate(spec, time_scale: float = 0.25) -> CrossValReport:
    """Run ``spec`` under both backends and compare commit outcomes.

    ``spec`` must be DES-eligible *and* live-eligible (osiris system, no
    trigger campaign, no capture); ``sanitize`` is forced on for the DES
    leg so the comparison also certifies substrate invariants.
    """
    from repro.api import run

    if spec.backend not in ("des", "live"):  # pragma: no cover - validated
        raise BenchmarkError(f"unexpected backend {spec.backend!r}")

    des_result = run(spec.with_(backend="des", sanitize=True, sinks=()))
    des_cluster = des_result.extra["cluster"]
    des_commits = {
        op.pid: commit_outcomes(op) for op in des_cluster.outputs
    }
    des_violations = (des_result.sanitizer_violations or 0)

    live_result = run(
        spec.with_(backend="live", sanitize=True, sinks=()),
        time_scale=time_scale,
    )
    live_commits = live_result.extra["commits"]
    live_violations = (live_result.sanitizer_violations or 0)

    label = spec.label or (
        f"{spec.workload if isinstance(spec.workload, str) else 'workload'}"
        f" n={spec.n} seed={spec.seed}"
    )
    return CrossValReport(
        spec_label=label,
        des_commits=des_commits,
        live_commits=live_commits,
        des_violations=des_violations,
        live_violations=live_violations,
        mismatches=_diff_outcomes(des_commits, live_commits),
    )
