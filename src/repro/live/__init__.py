"""Live OS-process backend: the protocol cores as real processes.

The same pure :class:`~repro.runtime.core.ProtocolCore` state machines
the DES hosts, run as one OS process per node over ``multiprocessing``
queues, selected by ``backend="live"`` on a
:class:`~repro.api.DeploymentSpec`.  See :mod:`repro.live.host` (child
side), :mod:`repro.live.runtime` (parent side) and
:mod:`repro.live.crossval` (DES ↔ live semantic equivalence harness).
"""

from repro.live.crossval import CrossValReport, commit_outcomes, cross_validate
from repro.live.host import LiveHost
from repro.live.runtime import LiveReport, LiveRuntime

__all__ = [
    "LiveHost",
    "LiveReport",
    "LiveRuntime",
    "CrossValReport",
    "commit_outcomes",
    "cross_validate",
]
