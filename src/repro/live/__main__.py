"""CLI for the live backend: run a spec as OS processes, or cross-validate.

::

    python -m repro.live run --workload anomaly --profile MM --n 4
    python -m repro.live crossval --n 4 --seed 0 [--campaign fig7a]

``run`` executes one deployment under ``backend="live"`` and prints the
result as JSON; ``crossval`` runs the same spec under both backends and
exits non-zero on any commit-outcome mismatch or invariant violation —
the shape the CI live-smoke job drives under a hard timeout.
"""

from __future__ import annotations

import argparse
import json
import sys


def _spec(args, backend: str):
    from repro.api import DeploymentSpec

    faults = None
    if args.campaign:
        from repro.adversary import library

        factory = getattr(library, args.campaign, None)
        if factory is None:
            raise SystemExit(f"unknown campaign {args.campaign!r}")
        faults = factory(at=args.campaign_at)
    return DeploymentSpec(
        workload=args.workload,
        workload_params={"profile": args.profile, "n_tasks": args.n_tasks}
        if args.workload == "anomaly"
        else {"n_tasks": args.n_tasks},
        n=args.n,
        seed=args.seed,
        deadline=args.deadline,
        faults=faults,
        sanitize=True,
        backend=backend,
    )


def _add_spec_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--workload", default="anomaly")
    sub.add_argument("--profile", default="MM", help="anomaly profile")
    sub.add_argument("--n-tasks", type=int, default=12)
    sub.add_argument("--n", type=int, default=4)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--deadline", type=float, default=120.0)
    sub.add_argument(
        "--time-scale",
        type=float,
        default=0.25,
        help="wall seconds per simulated second",
    )
    sub.add_argument(
        "--campaign", default="", help="adversary library factory (e.g. fig7a)"
    )
    sub.add_argument(
        "--campaign-at",
        type=float,
        default=0.5,
        help="simulated injection time for --campaign",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.live")
    subs = parser.add_subparsers(dest="cmd", required=True)
    _add_spec_args(subs.add_parser("run", help="run one live deployment"))
    _add_spec_args(
        subs.add_parser("crossval", help="compare DES and live outcomes")
    )
    args = parser.parse_args(argv)

    if args.cmd == "run":
        from repro.api import run

        result = run(_spec(args, "live"), time_scale=args.time_scale)
        out = result.to_dict() if hasattr(result, "to_dict") else vars(result)
        out.pop("extra", None)
        print(json.dumps(out, indent=2, default=str))
        return 0

    from repro.live.crossval import cross_validate

    report = cross_validate(_spec(args, "des"), time_scale=args.time_scale)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
