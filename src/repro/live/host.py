"""Child-process side of the live backend: one core, one OS process.

A :class:`LiveHost` is the wall-clock analogue of
:class:`~repro.runtime.des.DesHost`: the same
:class:`~repro.runtime.interpreter.EffectInterpreter` skeleton drives
the same pure :class:`~repro.runtime.core.ProtocolCore`, but the
substrate primitives map onto real queues and real time —

* ``Send``/``Multicast``/``NeqMulticast`` put codec-JSON
  :class:`~repro.live.wire.NetEnvelope` strings on the destination
  child's ``multiprocessing`` inbox queue (per-(src,dst) FIFO order is
  the queue's own FIFO guarantee, and ``sender``/``_neq`` are stamped
  by the transport exactly like the DES network stamps them);
* ``SetTimer``/``Schedule`` become entries on a local timer heap keyed
  by simulated time, served by the event loop's ``get(timeout=...)``;
* ``Job``/``CtrlJob``/``ApplyUpdate`` are *emulated* on free-list CPU
  banks (the app bank has ``cores`` lanes, the control bank one), so
  completion times, milestone offsets and ``busy_seconds`` follow the
  same cost model the DES charges — wall-clock execution of the
  callback happens when the emulated completion time arrives.

Simulated time is ``(monotonic() - t0) / time_scale`` with ``t0``
shared by all processes via :class:`~repro.live.wire.CtrlStart`; a
child that falls behind wall-clock (real Python execution is not free)
simply fires its due work late but **in order** — commit outcomes are
timing-independent by protocol design, which is what the
cross-validation harness (:mod:`repro.live.crossval`) checks.

The loop is single-threaded on purpose: one queue read, then all due
timer/job continuations, then the next read — the same
run-to-completion handler atomicity cores enjoy under the DES.
"""

from __future__ import annotations

import heapq
import queue
import time
from typing import Any, Optional

from repro.adversary.campaign import Action
from repro.adversary.engine import apply_action_to_core
from repro.core.input_output import InputProcess, OutputProcess
from repro.errors import LiveError
from repro.live.wire import (
    ChildEvent,
    ChildExit,
    ChildReady,
    CtrlAction,
    CtrlShutdown,
    CtrlStart,
    CtrlSubmit,
    NetEnvelope,
    register_wire,
)
from repro.runtime.codec import decode_json, encode_json
from repro.runtime.core import ProtocolCore
from repro.runtime.effects import (
    ApplyUpdate,
    CancelTimer,
    CtrlJob,
    Emit,
    Halt,
    Job,
    Multicast,
    NeqMulticast,
    Schedule,
    Send,
    SetTimer,
)
from repro.runtime.interpreter import EffectInterpreter

__all__ = ["LiveHost", "child_main"]

#: maximum blocking wait on the inbox, so the loop periodically re-derives
#: ``now`` even when neither timers nor messages are pending
_POLL_S = 0.25


class _EmuCpu:
    """Free-list CPU bank emulation (sim-time lanes, DES cost model)."""

    __slots__ = ("cores", "busy_seconds", "_free_at")

    def __init__(self, cores: int) -> None:
        self.cores = cores
        self.busy_seconds = 0.0
        self._free_at = [0.0] * cores

    def submit(self, now: float, cost: float) -> tuple[float, float]:
        """Occupy the earliest-free lane; returns (start, done) sim times."""
        lane = min(range(self.cores), key=self._free_at.__getitem__)
        start = max(now, self._free_at[lane])
        done = start + cost
        self._free_at[lane] = done
        self.busy_seconds += cost
        return start, done


class LiveHost(EffectInterpreter):
    """Runtime for one protocol core living in its own OS process."""

    def __init__(
        self,
        core: ProtocolCore,
        cores: int,
        inboxes: dict[str, Any],
        up: Any,
        wanted: frozenset[str],
    ) -> None:
        self.core = core
        self.pid = core.pid
        self.capture = False  # replay capture is DES-only (spec-validated)
        self._inboxes = inboxes
        self._inbox = inboxes[self.pid]
        self._up = up
        self._wanted = wanted
        self.cpu = _EmuCpu(cores)
        self.ctrl = _EmuCpu(1)
        self.crashed = False
        self.unhandled_messages = 0
        self._t0: Optional[float] = None
        self._scale = 1.0
        self._heap: list[tuple[float, int, str, tuple]] = []
        self._seq = 0
        self._timers: dict[str, int] = {}  # armed name -> heap entry seq
        self._stop = False
        core.bind(self)

    # --------------------------------------------------- runtime interface
    @property
    def now(self) -> float:
        if self._t0 is None:
            return 0.0
        return max(0.0, (time.monotonic() - self._t0) / self._scale)

    def wants(self, category: str) -> bool:
        return category in self._wanted

    @property
    def app_cpu(self):
        return self.cpu

    def timer_armed(self, name: str) -> bool:
        return name in self._timers

    perform = EffectInterpreter.interpret

    # ---------------------------------------------------------- primitives
    def _post(self, dst: str, msg: Any, neq: bool) -> None:
        box = self._inboxes.get(dst)
        if box is None:
            raise LiveError(f"{self.pid}: send to unknown node {dst!r}")
        env = NetEnvelope(
            src=self.pid,
            dst=dst,
            neq=neq,
            payload=encode_json(msg, with_sender=False),
        )
        box.put(encode_json(env))

    def _do_send(self, effect: Send) -> None:
        self._post(effect.dst, effect.msg, neq=False)

    def _do_multicast(self, effect: Multicast) -> None:
        for dst in effect.dsts:
            self._post(dst, effect.msg, neq=False)

    def _do_neq_multicast(self, effect: NeqMulticast) -> None:
        for dst in effect.dsts:
            self._post(dst, effect.msg, neq=True)

    def _push(self, at: float, kind: str, payload: tuple) -> int:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, kind, payload))
        return self._seq

    def _do_set_timer(self, effect: SetTimer) -> None:
        seq = self._push(self.now + effect.delay, "timer", (effect,))
        self._timers[effect.name] = seq  # re-arm supersedes (lazy delete)

    def _do_cancel_timer(self, effect: CancelTimer) -> None:
        self._timers.pop(effect.name, None)

    def _do_schedule(self, effect: Schedule) -> None:
        self._push(self.now + effect.delay, "sched", (effect,))

    def _do_job(self, effect: Job) -> None:
        start, done = self.cpu.submit(self.now, effect.cost)
        self._push(done, "job", (effect,))
        for idx in range(len(effect.milestones)):
            offset = effect.milestones[idx][0]
            self._push(start + offset, "milestone", (effect, idx))

    def _do_ctrl_job(self, effect: CtrlJob) -> None:
        _, done = self.ctrl.submit(self.now, effect.cost)
        self._push(done, "ctrljob", (effect,))

    def _do_apply_update(self, effect: ApplyUpdate) -> None:
        # occupies the app bank and accrues busy time; no continuation
        self.cpu.submit(self.now, effect.cost)

    def _do_emit(self, effect: Emit) -> None:
        # cores gate with wants() before constructing events, mirroring
        # the DES bus guard; anything performed anyway is forwarded and
        # the parent bus applies its own category routing
        self._up.put(encode_json(ChildEvent(pid=self.pid, event=effect.event)))

    def _do_halt(self, effect: Halt) -> None:
        # fail-stop: state freezes, pending timers die (guarded jobs are
        # blocked at fire time; unguarded jobs/milestones/schedules still
        # fire, exactly like SimProcess.crash under the DES)
        self.core.crashed = True
        self.crashed = True
        self._timers.clear()

    # ------------------------------------------------------------ the loop
    def run(self) -> None:
        """Serve the inbox until the parent shuts us down."""
        self._up.put(encode_json(ChildReady(pid=self.pid)))
        while not self._stop:
            timeout = _POLL_S
            if self._t0 is not None and self._heap:
                next_wall = self._t0 + self._heap[0][0] * self._scale
                timeout = min(
                    _POLL_S, max(0.0, next_wall - time.monotonic())
                )
            try:
                raw = self._inbox.get(timeout=timeout)
            except queue.Empty:
                raw = None
            if self._t0 is not None:
                self._fire_due()
            if raw is not None:
                self._handle(decode_json(raw))

    def _fire_due(self) -> None:
        while self._heap and self._heap[0][0] <= self.now:
            _, seq, kind, payload = heapq.heappop(self._heap)
            if kind == "timer":
                (effect,) = payload
                if self._timers.get(effect.name) != seq:
                    continue  # cancelled or superseded by a re-arm
                del self._timers[effect.name]
                if self.crashed:
                    continue
                self._fire_timer(effect)
            elif kind == "sched":
                (effect,) = payload
                self._fire_sched(effect)
            elif kind == "job":
                (effect,) = payload
                if effect.guarded and self.crashed:
                    continue
                self._job_thunk(effect)()
            elif kind == "ctrljob":
                (effect,) = payload
                if self.crashed:
                    continue  # control jobs are always guarded
                self._job_thunk(effect)()
            else:  # milestone
                effect, idx = payload
                self._fire_milestone(effect, idx)

    def _handle(self, item: Any) -> None:
        if isinstance(item, NetEnvelope):
            if self.crashed:
                return
            msg = decode_json(item.payload)
            msg.sender = item.src  # transport stamp, as Network.send does
            if item.neq:
                msg._neq = True  # delivery stamp, as Network._deliver does
            self._deliver_to_core(msg)
        elif isinstance(item, CtrlStart):
            self._t0 = item.t0
            self._scale = item.time_scale
            if isinstance(self.core, InputProcess):
                self.core.start()
        elif isinstance(item, CtrlSubmit):
            if not isinstance(self.core, InputProcess):
                raise LiveError(
                    f"{self.pid}: CtrlSubmit routed to a "
                    f"{type(self.core).__name__}"
                )
            self.core.inject(item.task)
        elif isinstance(item, CtrlAction):
            apply_action_to_core(
                self.core,
                self.core.topo,
                self.pid,
                Action.from_dict(item.action),
            )
        elif isinstance(item, CtrlShutdown):
            if item.grace > 0:
                deadline = time.monotonic() + item.grace
                while time.monotonic() < deadline:
                    try:
                        raw = self._inbox.get(
                            timeout=max(0.0, deadline - time.monotonic())
                        )
                    except queue.Empty:
                        break
                    tail = decode_json(raw)
                    if isinstance(tail, (NetEnvelope, CtrlSubmit)):
                        self._handle(tail)
                self._fire_due()
            self._up.put(encode_json(self._exit_report()))
            self._stop = True
        else:
            raise LiveError(f"{self.pid}: unexpected envelope {item!r}")

    def _exit_report(self) -> ChildExit:
        summary: dict = {}
        if isinstance(self.core, OutputProcess):
            from repro.live.crossval import commit_outcomes

            summary = commit_outcomes(self.core)
        engine = getattr(self.core, "engine", None)
        return ChildExit(
            pid=self.pid,
            summary=summary,
            busy_seconds=self.cpu.busy_seconds,
            tasks_executed=getattr(engine, "tasks_executed", 0),
            unhandled=self.unhandled_messages,
            crashed=self.crashed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveHost {type(self.core).__name__} {self.pid}>"


def _reseed(seed: int, pid: str) -> None:
    """Give this child its own RNG streams.

    ``fork`` duplicates the parent's global RNG state into every child,
    so without this all children (and the parent) would share one
    stream.  Protocol cores consume no randomness, but application and
    library code reaching the global generators must not be correlated
    across processes — derive per-child seeds from (spec seed, pid).
    """
    import hashlib
    import random

    h = hashlib.sha256(f"{seed}:{pid}".encode()).digest()
    random.seed(h)
    try:
        import numpy as np

        np.random.seed(int.from_bytes(h[:4], "big"))
    except ImportError:  # pragma: no cover - numpy is a core dependency
        pass


def child_main(
    plan,
    spec,
    app,
    workload,
    inboxes: dict[str, Any],
    up: Any,
    wanted: frozenset[str],
) -> None:
    """Entry point of one forked child: build the core, serve the loop."""
    register_wire()
    _reseed(plan.seed, spec.pid)
    from repro.crypto.signatures import KeyRegistry

    registry = KeyRegistry()
    for other in plan.nodes:  # same PKI view in every process
        if other.pid != spec.pid:
            registry.provision(other.pid)
    core = plan.make_core(spec, app, registry, workload=workload)
    host = LiveHost(core, spec.cores, inboxes, up, wanted)
    try:
        host.run()
    finally:
        # undelivered messages to peers must not wedge this process's
        # exit (their feeder threads would otherwise block on full
        # pipes); the up-queue is joined so the exit report flushes
        for box in inboxes.values():
            box.close()
            box.cancel_join_thread()
        up.close()
        up.join_thread()
