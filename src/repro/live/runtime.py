"""Parent-side orchestration of the live OS-process backend.

:class:`LiveRuntime` instantiates a backend-agnostic
:class:`~repro.runtime.plan.ClusterPlan` as one forked OS process per
node (``multiprocessing`` fork context: children inherit the plan, the
application and the queue handles without any pickling) and then acts
as the deployment's *substrate services* for the duration of the run:

* **observability pump** — children forward every emitted trace event
  over a shared up-queue; the parent decodes and re-emits them on a
  regular :class:`~repro.obs.bus.EventBus`, so the existing sinks
  (:class:`~repro.core.metrics.MetricsHub`, JSONL writers,
  :class:`~repro.check.conservation.ConservationSink`,
  :class:`~repro.adversary.recovery.RecoverySink`) run unmodified;
* **adversary clock** — timed campaign phases are scheduled against the
  shared wall-clock epoch; when a phase comes due the parent resolves
  its selectors and ships :class:`~repro.live.wire.CtrlAction`
  envelopes to the targeted children (trigger campaigns need
  synchronous bus reentry and are rejected at spec validation);
* **completion detection** — drain-to-completion runs finish when the
  pumped ``TaskCompleted`` count reaches the workload target (plus all
  phases fired); fixed-``duration`` runs finish at the simulated time;
* **graceful shutdown** — broadcast :class:`~repro.live.wire.CtrlShutdown`,
  collect every child's :class:`~repro.live.wire.ChildExit` report
  (output processes attach their commit summaries), join with a
  deadline, and kill stragglers so a wedged child can never hang the
  harness.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adversary.campaign import Phase, resolve_selector
from repro.errors import BenchmarkError, LiveError
from repro.live.host import child_main
from repro.live.wire import (
    ChildEvent,
    ChildExit,
    ChildReady,
    CtrlAction,
    CtrlShutdown,
    CtrlStart,
    CtrlSubmit,
    register_wire,
)
from repro.net.topology import shard_of_tenant
from repro.obs import events as _events
from repro.obs.bus import EventBus
from repro.obs.events import (
    CATEGORY_ADVERSARY,
    AdversaryAction,
    AdversaryPhase,
)
from repro.runtime.codec import decode_json, encode_json
from repro.runtime.plan import ClusterPlan

__all__ = ["LiveReport", "LiveRuntime"]

#: wall seconds to wait for every child's ready handshake
_READY_TIMEOUT_S = 30.0
#: wall seconds to wait for exit reports + process joins at shutdown
_JOIN_TIMEOUT_S = 10.0
#: wall-clock lead given to CtrlStart so every child sees t0 in its future
_START_LEAD_S = 0.05

_ALL_CATEGORIES = frozenset(
    getattr(_events, name)
    for name in _events.__all__
    if name.startswith("CATEGORY_")
)


@dataclass
class LiveReport:
    """Everything a live run produces (the wall-clock ScenarioResult
    ingredients plus the commit summaries cross-validation compares)."""

    #: op pid → commit outcome map (see :func:`repro.live.crossval.commit_outcomes`)
    commits: dict = field(default_factory=dict)
    #: pid → emulated-CPU busy seconds
    busy_seconds: dict = field(default_factory=dict)
    #: pid → tasks executed by that node's execution engine
    tasks_executed: dict = field(default_factory=dict)
    unhandled_messages: int = 0
    tasks_completed: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: conservation violations observed by the parent-side sink
    violations: int = 0
    #: (sim time, op, target pid, role, fault kind) of applied actions
    applied_actions: list = field(default_factory=list)


class LiveRuntime:
    """One live deployment: build once, :meth:`run` once."""

    def __init__(
        self,
        plan: ClusterPlan,
        app,
        workload=None,
        sinks: Iterable = (),
        time_scale: float = 1.0,
    ) -> None:
        register_wire()
        if plan.capture:
            raise LiveError(
                "replay capture needs the deterministic DES backend; "
                "run this spec with backend='des'"
            )
        if plan.campaign is not None and plan.campaign.triggers:
            raise LiveError(
                "trigger campaigns need synchronous bus reentry and are "
                "DES-only; live runs support timed phases"
            )
        if time_scale <= 0:
            raise LiveError(f"time_scale must be positive, got {time_scale}")
        self.plan = plan
        self.app = app
        self.workload = workload
        self.time_scale = time_scale
        self.bus = EventBus()
        from repro.core.metrics import MetricsHub

        self.metrics = MetricsHub()
        self.bus.attach(self.metrics)
        self.sanitizer_report = None
        if plan.sanitize:
            from repro.check.conservation import ConservationSink
            from repro.check.report import SanitizerReport

            # the full substrate sanitizer shadows simulated NICs and CPU
            # banks; live runs get its event-stream conservation checks
            self.sanitizer_report = SanitizerReport()
            self.bus.attach(ConservationSink(self.sanitizer_report))
        self.recovery = None
        if plan.campaign is not None:
            from repro.adversary.recovery import RecoverySink

            self.recovery = RecoverySink()
            self.bus.attach(self.recovery)
        for sink in sinks:
            self.bus.attach(sink)
        self._ran = False

    # ------------------------------------------------------------- plumbing
    def _wanted(self) -> frozenset[str]:
        """Category snapshot shipped to children at fork: what any
        parent-side sink wants now (attach-after-start is not supported
        across the process boundary)."""
        return frozenset(
            c for c in _ALL_CATEGORIES if self.bus.wants(c)
        )

    def _broadcast(self, payload: str) -> None:
        for box in self._inboxes.values():
            box.put(payload)

    # ------------------------------------------------------------ lifecycle
    def run(
        self,
        deadline: float,
        duration: Optional[float] = None,
        target_tasks: int = 0,
    ) -> LiveReport:
        """Execute the deployment; wall time ≈ sim time × ``time_scale``.

        ``deadline``/``duration`` are *simulated* seconds, mirroring the
        DES driver: with ``duration`` the run streams for that long;
        otherwise it drains until ``target_tasks`` tasks completed (and
        every campaign phase fired), failing loudly at ``deadline``.

        Composition of the serving lifecycle: :meth:`start`, the pump
        loop, :meth:`stop` — the gateway (:mod:`repro.serve`) drives the
        same three phases itself, with :meth:`submit`/:meth:`poll`
        between them instead of a pre-planned workload.
        """
        self.start()
        try:
            self._pump(deadline, duration, target_tasks, self._report)
            report = self._stop_inner()
            if (
                duration is None
                and target_tasks > 0
                and report.tasks_completed < target_tasks
            ):
                raise BenchmarkError(
                    f"scenario missed deadline: "
                    f"{report.tasks_completed}/{target_tasks} tasks "
                    f"by t={deadline}"
                )
            return report
        finally:
            self._cleanup(self._procs)

    def start(self) -> None:
        """Fork the children, complete the ready handshake, broadcast
        :class:`~repro.live.wire.CtrlStart`.  After this returns the
        deployment is live: :meth:`submit` injects tasks, :meth:`poll`
        services the event pump, :meth:`stop` tears everything down."""
        if self._ran:
            raise LiveError("a LiveRuntime instance runs once; build a new one")
        self._ran = True
        ctx = mp.get_context("fork")
        self._up = ctx.Queue()
        self._inboxes = {spec.pid: ctx.Queue() for spec in self.plan.nodes}
        wanted = self._wanted()
        primary_ip = (
            self.plan.topo.input_pids[0] if self.plan.topo.input_pids else None
        )
        procs: dict[str, mp.Process] = {}
        self._procs = procs
        self._t_wall0 = time.monotonic()
        try:
            for spec in self.plan.nodes:
                stream = (
                    self.workload.stream
                    if (spec.pid == primary_ip and self.workload is not None)
                    else None
                )
                p = ctx.Process(
                    target=child_main,
                    args=(
                        self.plan,
                        spec,
                        self.app,
                        stream,
                        self._inboxes,
                        self._up,
                        wanted,
                    ),
                    name=f"live-{spec.pid}",
                    daemon=True,
                )
                p.start()
                procs[spec.pid] = p
            self._await_ready(procs)
            self._t0 = time.monotonic() + _START_LEAD_S
            self._broadcast(
                encode_json(CtrlStart(t0=self._t0, time_scale=self.time_scale))
            )
            campaign = self.plan.campaign
            self._pending = (
                sorted(campaign.phases, key=lambda ph: ph.at)
                if campaign
                else []
            )
            self._last_reap = time.monotonic()
            self._report = LiveReport()
            self._exited = set()
        except BaseException:
            self._cleanup(procs)
            raise

    @property
    def now_sim(self) -> float:
        """Current simulated time of the running deployment."""
        return max(0.0, (time.monotonic() - self._t0) / self.time_scale)

    def submit(self, task) -> str:
        """Inject one externally-submitted task; returns the input pid
        it routed to.  Tenant-keyed over the plan's input pipelines
        (single-pipeline plans always route to ``ip0``).  Thread-safe:
        ``multiprocessing`` queue puts may race the pump thread."""
        ips = self.plan.topo.input_pids
        if not ips:
            raise LiveError("plan has no input process to submit to")
        pid = ips[shard_of_tenant(task.tenant, len(ips))]
        self._inboxes[pid].put(encode_json(CtrlSubmit(pid=pid, task=task)))
        return pid

    def poll(self, timeout: float = 0.05) -> None:
        """Service the deployment once: fire due campaign phases, reap
        dead children, pump available child events onto the bus.  Blocks
        at most ``timeout`` wall seconds.  External drivers (the serve
        gateway) call this in a loop between :meth:`start`/:meth:`stop`."""
        now_sim = self.now_sim
        while self._pending and self._pending[0].at <= now_sim:
            self._apply_phase(self._pending.pop(0), now_sim, self._report)
        if time.monotonic() - self._last_reap > 1.0:
            self._reap(self._procs, set())
            self._last_reap = time.monotonic()
        try:
            item = decode_json(self._up.get(timeout=timeout))
        except queue.Empty:
            return
        self._dispatch_up(item, self._report)
        while True:  # drain whatever else arrived, without blocking
            try:
                item = decode_json(self._up.get_nowait())
            except queue.Empty:
                break
            self._dispatch_up(item, self._report)
        self._report.tasks_completed = self.metrics.tasks_completed

    def stop(self) -> LiveReport:
        """Gracefully shut the deployment down and return its report
        (broadcast shutdown, collect exit summaries, join, clean up)."""
        try:
            return self._stop_inner()
        finally:
            self._cleanup(self._procs)

    def _stop_inner(self) -> LiveReport:
        report = self._report
        self._shutdown(self._t0, self._procs, report)
        report.wall_seconds = time.monotonic() - self._t_wall0
        if self.sanitizer_report is not None:
            report.violations = len(self.sanitizer_report.violations)
        return report

    def _await_ready(self, procs: dict) -> None:
        ready: set[str] = set()
        deadline = time.monotonic() + _READY_TIMEOUT_S
        while len(ready) < len(procs):
            self._reap(procs, ready)
            try:
                item = decode_json(
                    self._up.get(timeout=min(0.25, _READY_TIMEOUT_S))
                )
            except queue.Empty:
                if time.monotonic() > deadline:
                    missing = sorted(set(procs) - ready)
                    raise LiveError(
                        f"live start handshake timed out; not ready: {missing}"
                    )
                continue
            if isinstance(item, ChildReady):
                ready.add(item.pid)

    def _reap(self, procs: dict, ok_missing: set) -> None:
        """A dead child that never reported is a hard failure."""
        for pid, p in procs.items():
            if not p.is_alive() and p.exitcode not in (0, None):
                raise LiveError(
                    f"child {pid} died with exit code {p.exitcode} "
                    f"(see its stderr for the traceback)"
                )

    def _pump(
        self,
        deadline: float,
        duration: Optional[float],
        target_tasks: int,
        report: LiveReport,
    ) -> None:
        t0 = self._t0
        pending: list[Phase] = self._pending
        while True:
            now_sim = max(0.0, (time.monotonic() - t0) / self.time_scale)
            while pending and pending[0].at <= now_sim:
                self._apply_phase(pending.pop(0), now_sim, report)
            report.tasks_completed = self.metrics.tasks_completed
            if duration is not None:
                if now_sim >= duration:
                    return
            elif (
                target_tasks > 0
                and report.tasks_completed >= target_tasks
                and not pending
            ):
                return
            if now_sim >= deadline:
                return  # the caller turns a missed target into an error
            if time.monotonic() - self._last_reap > 1.0:
                self._reap(self._procs, set())
                self._last_reap = time.monotonic()
            next_phase_wall = (
                t0 + pending[0].at * self.time_scale if pending else None
            )
            timeout = 0.05
            if next_phase_wall is not None:
                timeout = min(
                    timeout, max(0.0, next_phase_wall - time.monotonic())
                )
            try:
                item = decode_json(self._up.get(timeout=timeout))
            except queue.Empty:
                continue
            self._dispatch_up(item, report)

    def _dispatch_up(self, item, report: LiveReport) -> None:
        if isinstance(item, ChildEvent):
            self.bus.emit(item.event)
            report.sim_seconds = max(
                report.sim_seconds, getattr(item.event, "time", 0.0)
            )
        elif isinstance(item, ChildExit):
            self._fold_exit(item, report)
        # late ChildReady duplicates are harmless; ignore anything else

    def _apply_phase(self, phase: Phase, now_sim: float, report: LiveReport) -> None:
        campaign = self.plan.campaign
        if self.bus.wants(CATEGORY_ADVERSARY):
            self.bus.emit(
                AdversaryPhase(
                    time=now_sim,
                    pid="adversary",
                    campaign=campaign.name,
                    phase=phase.name or f"t={phase.at:g}",
                )
            )
        for action in phase.actions:
            for pid in resolve_selector(action.select, self.plan.topo):
                self._inboxes[pid].put(
                    encode_json(CtrlAction(pid=pid, action=action.to_dict()))
                )
                kind = action.fault.kind if action.fault is not None else ""
                role = action.fault.role if action.fault is not None else ""
                report.applied_actions.append(
                    (now_sim, action.op, pid, role, kind)
                )
                if self.bus.wants(CATEGORY_ADVERSARY):
                    self.bus.emit(
                        AdversaryAction(
                            time=now_sim,
                            pid="adversary",
                            campaign=campaign.name,
                            op=action.op,
                            target=pid,
                            role=role,
                            fault=kind,
                        )
                    )

    def _fold_exit(self, item: ChildExit, report: LiveReport) -> None:
        if item.summary:
            report.commits[item.pid] = item.summary
        report.busy_seconds[item.pid] = item.busy_seconds
        if item.tasks_executed:
            report.tasks_executed[item.pid] = item.tasks_executed
        report.unhandled_messages += item.unhandled
        self._exited.add(item.pid)

    def _shutdown(self, t0: float, procs: dict, report: LiveReport) -> None:
        """Drain, collect exit reports, join with deadline, kill stragglers."""
        self._broadcast(encode_json(CtrlShutdown(grace=0.2)))
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        while (
            len(self._exited) < len(procs) and time.monotonic() < deadline
        ):
            try:
                item = decode_json(self._up.get(timeout=0.25))
            except queue.Empty:
                continue
            self._dispatch_up(item, report)
        for pid, p in procs.items():
            p.join(timeout=max(0.0, deadline - time.monotonic()) + 0.5)
        stragglers = [pid for pid, p in procs.items() if p.is_alive()]
        for pid in stragglers:
            procs[pid].terminate()
            procs[pid].join(timeout=1.0)
            if procs[pid].is_alive():  # pragma: no cover - last resort
                procs[pid].kill()
                procs[pid].join(timeout=1.0)
        missing = sorted(set(procs) - self._exited)
        if missing:
            raise LiveError(
                f"children never reported exit summaries: {missing} "
                f"(killed: {sorted(stragglers)})"
            )

    def _cleanup(self, procs: dict) -> None:
        for p in procs.values():
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in list(self._inboxes.values()) + [self._up]:
            q.close()
            q.cancel_join_thread()
        self.bus.close()
