"""Control-plane envelopes for the live OS-process backend.

Everything that crosses a process boundary is one codec-JSON string
(:mod:`repro.runtime.codec`): protocol messages ride inside a
:class:`NetEnvelope` (content form — ``sender``/``_neq`` are transport
stamps applied at send/delivery, exactly like the DES network), trace
events ride up to the parent inside a :class:`ChildEvent`, and the
parent drives children with the ``Ctrl*`` types.  :func:`register_wire`
installs every envelope *and* the full trace-event vocabulary in the
codec registry; both the parent and each child call it once at startup
(idempotent).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any

from repro.obs import events as _events
from repro.obs.events import TraceEvent
from repro.runtime import codec

__all__ = [
    "NetEnvelope",
    "CtrlStart",
    "CtrlAction",
    "CtrlSubmit",
    "CtrlShutdown",
    "ChildReady",
    "ChildEvent",
    "ChildExit",
    "register_wire",
]


@dataclass(slots=True)
class NetEnvelope:
    """One inter-node message hop: src → dst, payload in content form."""

    src: str
    dst: str
    neq: bool
    payload: str  # codec JSON of the protocol message (no sender stamp)


@dataclass(slots=True)
class CtrlStart:
    """Parent → every child: begin running.

    ``t0`` is a shared ``time.monotonic()`` epoch (comparable across
    processes on Linux — CLOCK_MONOTONIC is system-wide); sim time is
    ``(monotonic() - t0) / time_scale`` everywhere, so one wall second
    carries ``1/time_scale`` simulated seconds.
    """

    t0: float
    time_scale: float


@dataclass(slots=True)
class CtrlAction:
    """Parent → one child: apply an adversary action to the local core.

    ``action`` is ``Action.to_dict()`` — the campaign layer's canonical
    serialization, reused instead of registering fault specs with the
    codec.
    """

    pid: str
    action: dict = field(default_factory=dict)


@dataclass(slots=True)
class CtrlSubmit:
    """Parent → one input process: inject one externally-submitted task.

    This is the serving path (:mod:`repro.serve`): tasks arrive over a
    client socket instead of the pre-planned workload iterator, the
    gateway picks the shard's input pid, and the child's
    :meth:`~repro.core.input_output.InputProcess.inject` forwards the
    task into consensus exactly as a workload arrival would be.
    """

    pid: str
    task: Any = None


@dataclass(slots=True)
class CtrlShutdown:
    """Parent → every child: stop the loop, report, and exit."""

    grace: float = 0.0  # wall seconds to keep draining before reporting


@dataclass(slots=True)
class ChildReady:
    """Child → parent: core built and bound, inbox being served."""

    pid: str


@dataclass(slots=True)
class ChildEvent:
    """Child → parent: one trace event for the parent-side bus pump."""

    pid: str
    event: Any = None


@dataclass(slots=True)
class ChildExit:
    """Child → parent: final report, sent in response to CtrlShutdown.

    ``summary`` carries the commit outcomes for output processes (see
    :func:`repro.live.crossval.commit_outcomes`) and is empty for other
    roles.
    """

    pid: str
    summary: dict = field(default_factory=dict)
    busy_seconds: float = 0.0
    tasks_executed: int = 0
    unhandled: int = 0
    crashed: bool = False


_WIRE = (
    NetEnvelope,
    CtrlStart,
    CtrlAction,
    CtrlSubmit,
    CtrlShutdown,
    ChildReady,
    ChildEvent,
    ChildExit,
)


def register_wire() -> None:
    """Install the envelopes and the trace-event vocabulary (idempotent)."""
    codec.register(*_WIRE)
    for name in _events.__all__:
        obj = getattr(_events, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, TraceEvent)
            and obj is not TraceEvent
        ):
            codec.register(obj)
