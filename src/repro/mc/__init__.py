"""Bounded interleaving exploration of small OsirisBFT deployments.

``repro.mc`` drives the pure protocol cores through a
:class:`~repro.runtime.testing.McRuntime` whose pending-effect frontier
is a *choice point*: a DFS with sleep-set partial-order reduction,
state-fingerprint merging and CHESS-style delay bounding enumerates
delivery orders and audits the sanitizer's safety invariants (via the
shared :mod:`repro.check.invariants`) in every reachable terminal
state.  Violations shrink to minimal schedules serialized as JSON
reproducers; ``python -m repro.mc`` exposes ``explore``, ``replay``
and ``stats``.
"""

from repro.mc.explore import ExploreResult, ExploreStats, McViolation, explore
from repro.mc.model import McModel, build_world
from repro.mc.shrink import (
    McReproducer,
    check_trace,
    reproduce,
    run_trace,
    shrink_trace,
)
from repro.mc.world import Action, McWorld, audit_world

__all__ = [
    "Action",
    "ExploreResult",
    "ExploreStats",
    "McModel",
    "McReproducer",
    "McViolation",
    "McWorld",
    "audit_world",
    "build_world",
    "check_trace",
    "explore",
    "reproduce",
    "run_trace",
    "shrink_trace",
]
