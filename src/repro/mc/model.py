"""Small OsirisBFT deployments for bounded interleaving exploration.

A :class:`McModel` names everything that defines the explored system:
one verifier sub-cluster of ``n`` members (which doubles as VP_CO, the
k=1 layout), a small executor pool, one output process, ``tasks``
compute-only tasks, and at most one Byzantine fault drawn from the
:mod:`repro.core.faults` registries.  :func:`build_world` constructs
the deployment over pure :class:`~repro.runtime.core.ProtocolCore`
state machines bound to :class:`~repro.runtime.testing.McRuntime`
backends, then *bootstraps past consensus*: every coordinator member
commits each task directly (``_commit_task``), exactly as if the
consensus instance had delivered it — so the explored frontier starts
at the signed ``AssignmentMsg`` multicasts of the data plane, the part
of the protocol whose schedules are actually interesting, and
reproducer traces stay short.  Consensus is still *live* during
exploration: suspect/complete quorums route control ops through it.

No input process is modelled (tasks are pre-committed) and
``role_switching`` is off, so no periodic timers exist at the root.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core.config import OsirisConfig
from repro.core.coordinator import Coordinator
from repro.core.executor import Executor
from repro.core.faults import make_fault
from repro.core.input_output import OutputProcess
from repro.crypto.signatures import KeyRegistry
from repro.errors import ProtocolError
from repro.mc.world import McWorld
from repro.net.topology import SubCluster, Topology

__all__ = ["McModel", "build_world"]


@dataclass(frozen=True)
class McModel:
    """Parameters of one bounded exploration (all knobs serializable).

    ``delays`` is the CHESS-style reorder budget: every schedule the
    explorer enumerates deviates from the canonical (sorted-key)
    schedule at most ``delays`` times; ``-1`` removes the bound.
    ``timer_budget`` bounds how often each (pid, timer-name) pair may
    fire — timers fire only at message quiescence, and re-arming past
    the budget is inert — which keeps re-arming timeout loops finite.
    ``eager_local`` runs jobs/scheds atomically right after the
    delivery that queued them; ``stutter`` commits deliveries that
    leave their target core unchanged without branching on them.
    """

    n: int = 3
    tasks: int = 2
    executors: int = 1
    records: int = 2
    fault_role: str = ""
    fault_kind: str = ""
    timer_budget: int = 1
    eager_local: bool = True
    stutter: bool = True
    delays: int = 1

    def validate(self) -> None:
        if not 3 <= self.n <= 4:
            raise ProtocolError(f"mc model needs 3 <= n <= 4, got {self.n}")
        if not 1 <= self.tasks <= 3:
            raise ProtocolError(
                f"mc model needs 1 <= tasks <= 3, got {self.tasks}"
            )
        if not 1 <= self.executors <= 2:
            raise ProtocolError(
                f"mc model needs 1 <= executors <= 2, got {self.executors}"
            )
        if self.records < 1:
            raise ProtocolError("mc model needs records >= 1")
        if self.timer_budget < 0:
            raise ProtocolError("mc model needs timer_budget >= 0")
        if bool(self.fault_role) != bool(self.fault_kind):
            raise ProtocolError(
                "fault_role and fault_kind must be set together"
            )
        if self.fault_role and self.fault_role not in ("executor", "verifier"):
            raise ProtocolError(
                f"mc models support executor/verifier faults, "
                f"got {self.fault_role!r}"
            )

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "tasks": self.tasks,
            "executors": self.executors,
            "records": self.records,
            "fault_role": self.fault_role,
            "fault_kind": self.fault_kind,
            "timer_budget": self.timer_budget,
            "eager_local": self.eager_local,
            "stutter": self.stutter,
            "delays": self.delays,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "McModel":
        model = cls()
        known = {k: v for k, v in data.items() if k in model.to_dict()}
        return replace(model, **known)


def build_world(model: McModel) -> McWorld:
    """Construct and bootstrap the deployment described by ``model``.

    The returned world's pending frontier holds exactly the data-plane
    deliveries produced by committing every task at every coordinator
    member (assignment multicasts), and no timers are armed.
    """
    model.validate()
    verifiers = tuple(f"v{i}" for i in range(model.n))
    executors = tuple(f"e{i}" for i in range(model.executors))
    topo = Topology(
        input_pids=(),
        output_pids=("op0",),
        executor_pids=executors,
        verifier_clusters=(SubCluster(index=0, members=verifiers, f=1),),
        f=1,
    )
    registry = KeyRegistry()
    signers = {p: registry.register(p) for p in topo.all_pids()}
    config = OsirisConfig(role_switching=False)
    app = SyntheticApp(records_per_task=model.records, compute_cost=1e-3)
    fault = (
        make_fault(model.fault_role, model.fault_kind)
        if model.fault_role
        else None
    )

    world = McWorld(model, topo, config, app, registry)
    for pid in verifiers:
        # verifier faults target the initial leader — the most
        # consequential seat for negligence/digest lies
        vfault = (
            fault
            if model.fault_role == "verifier" and pid == verifiers[0]
            else None
        )
        core = Coordinator(
            pid,
            topo,
            registry,
            signers[pid],
            app,
            config,
            cluster=topo.cluster(0),
            fault=vfault,
        )
        world.add_core(core, coordinator=True)
    for pid in executors:
        efault = (
            fault
            if model.fault_role == "executor" and pid == executors[0]
            else None
        )
        world.add_core(
            Executor(
                pid, topo, registry, signers[pid], app, config, fault=efault
            )
        )
    world.add_core(OutputProcess("op0", topo, config), output=True)

    # bootstrap past consensus: each member commits each task directly,
    # then all queued control jobs (assignment signing) run to rest
    for i in range(model.tasks):
        task = make_compute_task(i, model.records)
        for pid in verifiers:
            world.cores[pid]._commit_task(task)
    world.drain_local()
    world.invalidate_all()
    return world
