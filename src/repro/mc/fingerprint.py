"""Deterministic structural digests of core state, for state merging.

The explorer identifies "the same state reached along two schedules" by
hashing the protocol-relevant object graph of every core.  Python's
built-in ``hash`` is salted per process and ``id`` is allocation
order, so neither can appear in a digest that must be stable across
two runs (the ISSUE's determinism acceptance check runs the explorer
twice and compares counts).  :func:`stable_digest` walks the graph
with sha256 over value *tokens*:

* primitives hash their repr (floats via ``repr`` keeps 0.5 vs 0.25
  distinct without precision games);
* dicts hash items sorted by the token of the key, sets sorted by the
  token of each element — insertion order is an artifact of schedule,
  not of state;
* arbitrary objects hash their class name plus sorted ``__dict__`` /
  ``__slots__`` entries, minus a skip set of environment references
  (runtime, topology, registry, app, config …) that are shared across
  all schedules by construction;
* functions hash their qualname plus closure-cell contents and
  defaults (continuations queued as pending jobs close over state that
  matters); bound methods walk their ``__self__``;
* cycles are broken with a memo that tokens back-edges by *visit
  order*, not ``id`` — visit order is deterministic given the walk.
"""

from __future__ import annotations

import hashlib
from collections import deque
from enum import Enum
from functools import partial
from types import FunctionType, MethodType

__all__ = ["stable_digest", "DEFAULT_SKIP"]

# Attributes that point at shared environment, not explored state.
# ``world``/``_rt``/``host`` would recurse into the whole deployment;
# topo/registry/signer/app/config are immutable-by-convention and
# identical across schedules; ``_handlers`` is a derived dispatch table.
DEFAULT_SKIP = frozenset(
    {"_rt", "host", "topo", "registry", "signer", "app", "config",
     "_handlers", "world"}
)

_PRIMITIVES = (str, bytes, int, float, bool, type(None))


def stable_digest(obj, skip: frozenset = DEFAULT_SKIP) -> str:
    """Hex sha256 of the structural walk of ``obj``.

    ``skip`` names attributes omitted wherever they appear on any
    object along the walk.
    """
    h = hashlib.sha256()
    memo: dict[int, int] = {}
    _walk(obj, h, memo, skip)
    return h.hexdigest()


def _atom_token(obj) -> bytes:
    """Sort key for dict keys / set elements: a self-contained token.

    Falls back to a full sub-digest for rare composite keys (tuples of
    primitives are the common case in this codebase).
    """
    t = type(obj)
    if t in (str, int, float, bool, type(None)):
        return f"{t.__name__}:{obj!r}".encode()
    if t is bytes:
        return b"bytes:" + obj
    if isinstance(obj, Enum):
        return f"enum:{type(obj).__name__}.{obj.name}".encode()
    if t is tuple:
        return b"tup:" + b"|".join(_atom_token(x) for x in obj)
    if t is frozenset:
        return b"fz:" + b"|".join(sorted(_atom_token(x) for x in obj))
    sub = hashlib.sha256()
    _walk(obj, sub, {}, DEFAULT_SKIP)
    return b"obj:" + sub.digest()


def _walk(obj, h, memo: dict[int, int], skip: frozenset) -> None:
    t = type(obj)
    if t in _PRIMITIVES:
        h.update(_atom_token(obj))
        return
    if isinstance(obj, Enum):
        h.update(_atom_token(obj))
        return

    oid = id(obj)
    if oid in memo:
        h.update(f"<cycle:{memo[oid]}>".encode())
        return
    memo[oid] = len(memo)

    if t is dict:
        h.update(b"{")
        for key, value in sorted(
            obj.items(), key=lambda kv: _atom_token(kv[0])
        ):
            h.update(_atom_token(key))
            h.update(b"=")
            _walk(value, h, memo, skip)
            h.update(b",")
        h.update(b"}")
    elif t in (set, frozenset):
        h.update(b"s{")
        for token in sorted(_atom_token(x) for x in obj):
            h.update(token)
            h.update(b",")
        h.update(b"}")
    elif t in (list, tuple) or t is deque:
        h.update(f"{t.__name__}[".encode())
        for item in obj:
            _walk(item, h, memo, skip)
            h.update(b",")
        h.update(b"]")
    elif t is FunctionType:
        h.update(f"fn:{obj.__qualname__}".encode())
        if obj.__closure__:
            h.update(b"(")
            for cell in obj.__closure__:
                try:
                    contents = cell.cell_contents
                except ValueError:  # empty cell
                    h.update(b"<empty>")
                else:
                    _walk(contents, h, memo, skip)
                h.update(b",")
            h.update(b")")
        if obj.__defaults__:
            h.update(b"d(")
            for default in obj.__defaults__:
                _walk(default, h, memo, skip)
                h.update(b",")
            h.update(b")")
    elif t is MethodType:
        h.update(f"bm:{obj.__func__.__qualname__}@".encode())
        _walk(obj.__self__, h, memo, skip)
    elif t is partial:
        h.update(b"partial:")
        _walk(obj.func, h, memo, skip)
        _walk(obj.args, h, memo, skip)
        _walk(obj.keywords, h, memo, skip)
    elif hasattr(obj, "__dict__") or hasattr(obj, "__slots__"):
        h.update(f"<{type(obj).__name__}".encode())
        fields: dict = {}
        if hasattr(obj, "__dict__"):
            fields.update(obj.__dict__)
        for slots_of in type(obj).__mro__:
            for name in getattr(slots_of, "__slots__", ()):
                if name not in fields and hasattr(obj, name):
                    fields[name] = getattr(obj, name)
        for name in sorted(fields):
            if name in skip:
                continue
            h.update(f".{name}=".encode())
            _walk(fields[name], h, memo, skip)
        h.update(b">")
    else:  # last resort: partial/objects without dicts — repr-ish tag
        h.update(f"<?{type(obj).__name__}>".encode())
