"""Bounded DFS over delivery orders, with partial-order reduction.

The explorer enumerates schedules of a :class:`~repro.mc.model.McModel`
world and audits the shared safety invariants in every reachable
terminal state.  Full enumeration of even a 3-verifier/2-task model is
astronomically large (every permutation of every frontier), so three
reductions keep it within CI seconds — each one classical, each
documented in DESIGN.md §16:

* **sleep sets** (DPOR): after branching on action *a* from a state,
  sibling branches carry *a* in their sleep set filtered by the
  independence relation "different target core" — delivering to v0 and
  delivering to v1 commute, so only one order of the pair is explored;
* **state-fingerprint coverage**: a state reached again with a weaker
  exploration obligation (superset sleep, no more remaining delay
  budget) is merged, not re-expanded;
* **delay bounding** (CHESS): the canonical schedule always takes the
  sorted-first enabled action; each deviation costs one unit of the
  model's ``delays`` budget.  Every schedule that deviates at most
  ``delays`` times is covered — violations found under any bound are
  real, and empirically small bounds find real concurrency bugs.

A **stutter** delivery (target core structurally unchanged, nothing
enqueued) is committed without branching on its alternatives; this is
a heuristic (sound when no-op-ness is history-monotone, which holds
for the accumulate-until-threshold handlers of these cores) and can
be disabled per model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mc.model import McModel, build_world
from repro.mc.world import McWorld, audit_world

__all__ = ["ExploreStats", "McViolation", "ExploreResult", "explore"]


@dataclass
class ExploreStats:
    """Counters of one exploration, all deterministic across runs."""

    states: int = 0           # unique fingerprints visited
    transitions: int = 0      # actions actually executed and kept
    terminals: int = 0        # quiescent states audited
    cache_hits: int = 0       # pushes merged into a covered state
    sleep_skips: int = 0      # enabled actions skipped via sleep sets
    stutter_commits: int = 0  # deliveries committed without branching
    delay_prunes: int = 0     # branches cut by the delay budget
    violations: int = 0
    #: path count root→terminal through the explored DAG (back edges
    #: dropped) — the number of interleavings the reduced search covers
    #: via merging, ignoring the sleep/delay multiplier.
    interleavings: int = 0
    #: transition count of the unshared tree unrolling of the explored
    #: DAG (back edges dropped) — what plain stateless enumeration of
    #: the same schedules would have executed.
    tree_size: int = 0
    reduction_ratio: float = 0.0
    complete: bool = True     # False when a guard stopped the search

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class McViolation:
    """One invariant violation at a terminal state, with its schedule."""

    trace: tuple            # tuple of action keys from the initial state
    invariants: list[str]
    details: list[str]
    fingerprint: str


@dataclass
class ExploreResult:
    model: McModel
    stats: ExploreStats
    violations: list[McViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class _Node:
    __slots__ = ("world", "trace", "sleep", "spent", "fp")

    def __init__(self, world, trace, sleep, spent, fp):
        self.world = world
        self.trace = trace
        self.sleep = sleep
        self.spent = spent
        self.fp = fp


def explore(
    model: McModel,
    max_transitions: int = 200_000,
    max_violations: int = 1,
    root: Optional[McWorld] = None,
) -> ExploreResult:
    """Run the bounded DFS; see module docstring for the reductions.

    ``root`` overrides the initial world (tests use it to explore
    monkeypatched deployments); by default :func:`build_world` builds
    it from ``model``.
    """
    stats = ExploreStats()
    violations: list[McViolation] = []
    # fingerprint -> list of (sleep, spent) obligations already explored
    covered: dict[str, list[tuple[frozenset, int]]] = {}
    # explored DAG for the stats DPs: fingerprint -> child fingerprints
    edges: dict[str, list[str]] = {}
    terminal_fps: set[str] = set()
    stack: list[_Node] = []

    def visit(world, trace, sleep, spent) -> str:
        """Coverage check at push time; returns the state fingerprint."""
        fp = world.fingerprint()
        entries = covered.get(fp)
        if entries is None:
            entries = covered[fp] = []
            stats.states += 1
        else:
            for s, sp in entries:
                if s <= sleep and sp <= spent:
                    stats.cache_hits += 1
                    return fp
        entries[:] = [
            (s, sp)
            for s, sp in entries
            if not (sleep <= s and spent <= sp)
        ]
        entries.append((sleep, spent))
        stack.append(_Node(world, trace, sleep, spent, fp))
        return fp

    start = root if root is not None else build_world(model)
    root_fp = visit(start, (), frozenset(), 0)

    while stack:
        if stats.transitions >= max_transitions:
            stats.complete = False
            break
        node = stack.pop()
        enabled = node.world.enabled()
        if not enabled:
            stats.terminals += 1
            terminal_fps.add(node.fp)
            report = audit_world(node.world)
            if not report.ok:
                violations.append(
                    McViolation(
                        trace=node.trace,
                        invariants=sorted(report.invariants_hit()),
                        details=[str(v) for v in report.violations[:8]],
                        fingerprint=node.fp,
                    )
                )
                if len(violations) >= max_violations:
                    stats.complete = False
                    break
            continue

        canonical = enabled[0].key
        candidates = [a for a in enabled if a.key not in node.sleep]
        stats.sleep_skips += len(enabled) - len(candidates)
        if not candidates:
            # everything enabled here was already branched on from an
            # equivalent earlier state — nothing left to do
            continue

        built: list[tuple] = []  # (action, child world, delay cost)
        stutter_hit = None
        for idx, action in enumerate(candidates):
            cost = 0 if action.key == canonical else 1
            if model.delays >= 0 and node.spent + cost > model.delays:
                stats.delay_prunes += 1
                continue
            # the node's own world backs the last branch; earlier
            # branches run on clones
            child = (
                node.world
                if idx == len(candidates) - 1
                else node.world.clone()
            )
            if child.execute(action):
                stutter_hit = (action, child)
                break
            built.append((action, child, cost))

        if stutter_hit is not None:
            # no-op delivery: commit it alone; sibling schedules are
            # equivalent to this one with the no-op absorbed
            action, child = stutter_hit
            stats.stutter_commits += 1
            stats.transitions += 1
            child_fp = visit(
                child, node.trace + (action.key,), node.sleep, node.spent
            )
            edges.setdefault(node.fp, []).append(child_fp)
            continue

        done: list = []
        pushes: list[tuple] = []
        for action, child, cost in built:
            child_sleep = frozenset(
                k
                for k in (node.sleep | set(done))
                if k[1] != action.key[1]
            )
            pushes.append(
                (action, child, child_sleep, node.spent + cost)
            )
            if action.key[0] != "t":
                # timers are never independent of later timers (both
                # gate on quiescence), so they never enter sleep sets
                done.append(action.key)
        # push in reverse so the canonical branch is explored first
        for action, child, child_sleep, spent in reversed(pushes):
            stats.transitions += 1
            child_fp = visit(
                child, node.trace + (action.key,), child_sleep, spent
            )
            edges.setdefault(node.fp, []).append(child_fp)

    stats.violations = len(violations)
    if stats.complete:
        stats.tree_size = _tree_size(edges, root_fp)
        stats.interleavings = _path_count(edges, root_fp, terminal_fps)
        stats.reduction_ratio = stats.tree_size / max(1, stats.transitions)
    return ExploreResult(model=model, stats=stats, violations=violations)


def _tree_size(edges: dict, root: str) -> int:
    """Transition count of the unshared tree unrolling of the DAG.

    Iterative post-order; a back edge to a state still on the DFS path
    contributes 0 (sound lower bound — cycles would be infinite).
    """
    sizes: dict[str, int] = {}
    onpath: set[str] = set()
    # (fp, child cursor) frames
    stack: list[list] = [[root, 0]]
    onpath.add(root)
    while stack:
        frame = stack[-1]
        fp, cursor = frame
        children = edges.get(fp, ())
        if cursor < len(children):
            frame[1] += 1
            child = children[cursor]
            if child in sizes or child in onpath:
                continue
            onpath.add(child)
            stack.append([child, 0])
        else:
            stack.pop()
            onpath.discard(fp)
            total = 0
            for child in children:
                total += sizes.get(child, 0)  # back edges count 0
            sizes[fp] = total + len(children)
    return sizes.get(root, 0)


def _path_count(edges: dict, root: str, terminals: set) -> int:
    """Distinct root→terminal paths in the DAG (back edges dropped)."""
    counts: dict[str, int] = {}
    onpath: set[str] = set()
    stack: list[list] = [[root, 0]]
    onpath.add(root)
    while stack:
        frame = stack[-1]
        fp, cursor = frame
        children = edges.get(fp, ())
        if cursor < len(children):
            frame[1] += 1
            child = children[cursor]
            if child in counts or child in onpath:
                continue
            onpath.add(child)
            stack.append([child, 0])
        else:
            stack.pop()
            onpath.discard(fp)
            total = 1 if fp in terminals else 0
            for child in children:
                total += counts.get(child, 0)
            counts[fp] = total
    return counts.get(root, 0)
