"""CLI: ``python -m repro.mc explore --n 3 --tasks 2``.

Subcommands
-----------
``explore``
    Build the model, run the bounded DFS, audit every terminal state.
    On violations, shrinks each to a minimal schedule and prints (or
    writes, with ``--out``) a JSON reproducer.  Exits 1 on violations,
    2 on a bad model.
``replay``
    Replay a reproducer (inline JSON or ``@file``).  Exits 0 when the
    expected invariant re-fires, 1 when it does not, 2 on bad input.
``stats``
    Explore and print the reduction accounting (states, transitions,
    tree size of the unreduced enumeration, reduction ratio).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ProtocolError
from repro.mc.explore import explore
from repro.mc.model import McModel
from repro.mc.shrink import McReproducer, reproduce, shrink_trace


def _model_from_args(args: argparse.Namespace) -> McModel:
    fault_role, fault_kind = "", ""
    if args.fault:
        if ":" not in args.fault:
            raise ProtocolError(
                f"--fault wants role:kind (e.g. executor:corrupt-record), "
                f"got {args.fault!r}"
            )
        fault_role, fault_kind = args.fault.split(":", 1)
    return McModel(
        n=args.n,
        tasks=args.tasks,
        executors=args.executors,
        records=args.records,
        fault_role=fault_role,
        fault_kind=fault_kind,
        timer_budget=args.timer_budget,
        eager_local=not args.no_eager_local,
        stutter=not args.no_stutter,
        delays=args.delays,
    )


def _run(args: argparse.Namespace):
    model = _model_from_args(args)
    return model, explore(
        model,
        max_transitions=args.max_transitions,
        max_violations=args.max_violations,
    )


def _cmd_explore(args: argparse.Namespace) -> int:
    try:
        model, result = _run(args)
    except ProtocolError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    stats = result.stats
    print(
        f"mc explore: {stats.states} states, {stats.transitions} "
        f"transitions, {stats.terminals} terminals, "
        f"{stats.violations} violation(s)"
        f"{'' if stats.complete else ' [stopped early]'}"
    )
    for i, violation in enumerate(result.violations):
        trace = violation.trace
        if not args.no_shrink:
            trace = shrink_trace(
                model, list(trace), set(violation.invariants)
            )
        rep = McReproducer(
            model=model,
            invariants=list(violation.invariants),
            trace=list(trace),
            details=list(violation.details),
        )
        print(f"\nviolation {i + 1}: {violation.invariants}")
        for detail in violation.details:
            print(f"  {detail}")
        if args.out:
            path = args.out if len(result.violations) == 1 else (
                f"{args.out}.{i + 1}"
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(rep.to_json())
            print(f"reproducer written to {path}")
        else:
            print("reproducer (run with `python -m repro.mc replay`):")
            print(json.dumps(rep.to_dict()))
    if args.json:
        json.dump(
            {
                "model": model.to_dict(),
                "stats": stats.to_dict(),
                "violations": [
                    {
                        "invariants": v.invariants,
                        "details": v.details,
                        "trace": [list(k) for k in v.trace],
                    }
                    for v in result.violations
                ],
            },
            sys.stdout,
            indent=2,
        )
        print()
    return 0 if result.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        text = args.reproducer
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as fh:
                text = fh.read()
        rep = McReproducer.from_dict(json.loads(text))
        rep.model.validate()
    except (OSError, ValueError, ProtocolError) as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    hit, report = reproduce(rep)
    print(report.summary())
    if hit:
        print(f"reproduced: {sorted(set(report.invariants_hit()) & set(rep.invariants))}")
        return 0
    print(f"NOT reproduced: expected {rep.invariants}")
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        model, result = _run(args)
    except ProtocolError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    stats = result.stats
    if args.json:
        json.dump(
            {"model": model.to_dict(), "stats": stats.to_dict()},
            sys.stdout,
            indent=2,
        )
        print()
    else:
        for name, value in stats.to_dict().items():
            print(f"{name:>18}: {value}")
    return 0 if result.ok else 1


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=3, help="verifiers (3..4)")
    parser.add_argument("--tasks", type=int, default=2, help="tasks (1..3)")
    parser.add_argument(
        "--executors", type=int, default=1, help="executors (1..2)"
    )
    parser.add_argument(
        "--records", type=int, default=2, help="records per task"
    )
    parser.add_argument(
        "--fault",
        default="",
        help="single Byzantine fault as role:kind "
        "(e.g. executor:corrupt-record, verifier:bogus-digest)",
    )
    parser.add_argument(
        "--timer-budget",
        type=int,
        default=1,
        help="fires allowed per (core, timer) pair",
    )
    parser.add_argument(
        "--delays",
        type=int,
        default=1,
        help="CHESS delay budget; -1 removes the bound",
    )
    parser.add_argument(
        "--no-stutter",
        action="store_true",
        help="branch on no-op deliveries too",
    )
    parser.add_argument(
        "--no-eager-local",
        action="store_true",
        help="treat queued local jobs as separate choice points",
    )
    parser.add_argument(
        "--max-transitions",
        type=int,
        default=200_000,
        help="hard stop on executed transitions",
    )
    parser.add_argument(
        "--max-violations",
        type=int,
        default=1,
        help="stop after this many violations",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable outcome"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc",
        description="Bounded interleaving exploration of the pure cores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("explore", help="enumerate schedules and audit")
    _add_model_args(exp)
    exp.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violating schedules as found, without minimizing",
    )
    exp.add_argument(
        "--out", default="", help="write reproducer JSON to this path"
    )
    exp.set_defaults(fn=_cmd_explore)

    rep = sub.add_parser("replay", help="replay a JSON reproducer")
    rep.add_argument(
        "reproducer",
        help="reproducer JSON, or @path to read it from a file",
    )
    rep.set_defaults(fn=_cmd_replay)

    st = sub.add_parser("stats", help="explore and print reduction stats")
    _add_model_args(st)
    st.set_defaults(fn=_cmd_stats)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
