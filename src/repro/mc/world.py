"""The explorable world: cores + pending frontier as a choice point.

A :class:`McWorld` owns every core of one small deployment (each bound
to its :class:`~repro.runtime.testing.McRuntime`), the shared pending
frontier (undelivered messages and unexecuted local jobs), and the
per-(pid, timer) fire budgets.  The explorer drives it through exactly
three operations: :meth:`enabled` (the current choice point),
:meth:`execute` (commit one action, optionally draining its local
follow-ups), and :meth:`clone` (snapshot for backtracking).

Action identity is *content-based*, not queue-positional: a delivery is
keyed by (target, sender, payload-hash, occurrence#), so the same
logical action has the same key in every schedule — which is what lets
sleep sets and the delay budget compare actions across branches, and
lets a shrunk trace replay as a list of keys.

Fingerprints (:meth:`fingerprint`) compose cached per-core structural
digests with the occurrence-stripped multiset of pending keys and the
timer budgets spent.  The occurrence counters themselves are excluded:
two states differing only in how many identical payloads have *ever*
been enqueued behave identically going forward.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any

from repro.check.invariants import audit_safety
from repro.check.report import SanitizerReport
from repro.mc.fingerprint import DEFAULT_SKIP, stable_digest
from repro.runtime.testing import McRuntime, describe_effect

__all__ = ["Action", "McWorld", "audit_world", "describe_action"]

# sender/_neq are transport stamps applied at delivery, not payload
_MSG_SKIP = frozenset(DEFAULT_SKIP | {"sender", "_neq"})


class Action:
    """One schedulable unit: a delivery, a local job, or a timer.

    ``key`` is the identity used for ordering, sleep sets, fingerprints
    and trace serialization:

    * ``("d", dst, src, payload_hash, occurrence)`` — deliver;
    * ``("l", pid, effect_type, id)`` — run a queued Job/CtrlJob/Schedule;
    * ``("t", pid, timer_name, spent)`` — fire an armed timer.

    The kind letters sort ``d < l < t``, so sorted choice points try
    deliveries first — that makes the canonical (0-delay) schedule a
    natural "network faster than timeouts" run.
    """

    __slots__ = ("key", "src", "msg", "neq", "effect")

    def __init__(self, key, src=None, msg=None, neq=False, effect=None):
        self.key = key
        self.src = src
        self.msg = msg
        self.neq = neq
        self.effect = effect

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Action{self.key!r}"


def describe_action(action: Action) -> str:
    """Human-oriented one-liner for logs and reproducer metadata."""
    key = action.key
    if key[0] == "d":
        tag = type(action.msg).__name__ if action.msg is not None else key[3]
        neq = " (neq)" if action.neq else ""
        return f"deliver {key[2]}->{key[1]} {tag}{neq} #{key[4]}"
    if key[0] == "l":
        if action.effect is not None:
            return f"local {key[1]} {describe_effect(action.effect)}"
        return f"local {key[1]} {key[2]}#{key[3]}"
    return f"timer {key[1]} {key[2]} (fire #{key[3] + 1})"


class McWorld:
    """Cores, frontier, and budgets of one explorable deployment."""

    def __init__(self, model, topo, config, app, registry) -> None:
        self.model = model
        self.topo = topo
        self.config = config
        self.app = app
        self.registry = registry
        self.clock = 0.0
        self.cores: dict[str, Any] = {}
        self.runtimes: dict[str, McRuntime] = {}
        self.coordinators: list = []
        self.outputs: list = []
        self.pending: dict[tuple, Action] = {}
        # (dst, src, payload_hash) -> next occurrence number
        self._occ: dict[tuple, int] = {}
        # (pid, timer_name) -> fires consumed
        self.timer_spent: dict[tuple, int] = {}
        # pid -> cached structural digest (invalidated on mutation)
        self._core_fp: dict[str, str] = {}

    # ------------------------------------------------------------- building
    def add_core(self, core, coordinator: bool = False,
                 output: bool = False) -> None:
        rt = McRuntime(core, self, cores=self.config.cores_per_node)
        self.cores[core.pid] = core
        self.runtimes[core.pid] = rt
        if coordinator:
            self.coordinators.append(core)
        if output:
            self.outputs.append(core)

    # ---------------------------------------------------- frontier plumbing
    def enqueue_send(self, src: str, dst: str, msg, neq: bool) -> None:
        payload = stable_digest(msg, _MSG_SKIP)[:16]
        if neq:
            payload += ":q"
        occ = self._occ.get((dst, src, payload), 0)
        self._occ[(dst, src, payload)] = occ + 1
        key = ("d", dst, src, payload, occ)
        self.pending[key] = Action(key, src=src, msg=msg, neq=neq)

    def enqueue_local(self, pid: str, effect) -> None:
        ident = getattr(effect, "job_id", None)
        if ident is None:
            ident = effect.sched_id
        key = ("l", pid, type(effect).__name__, ident)
        self.pending[key] = Action(key, effect=effect)

    # --------------------------------------------------------- choice point
    def enabled(self) -> list[Action]:
        """Schedulable actions, in canonical (sorted-key) order.

        While messages or local jobs are pending, only those are
        enabled; timers become schedulable at quiescence — a timeout
        firing while its answer sits in the network is the
        asynchronous case, but exploring it multiplies the space for
        schedules the timer *budget* already covers (fire budgets make
        each timer's late firing reachable from the quiescent state).
        """
        keys = sorted(self.pending)
        if keys:
            return [self.pending[k] for k in keys]
        out = []
        for pid in sorted(self.runtimes):
            rt = self.runtimes[pid]
            for name in sorted(rt.timers):
                spent = self.timer_spent.get((pid, name), 0)
                if spent < self.model.timer_budget:
                    out.append(Action(("t", pid, name, spent)))
        return out

    # ------------------------------------------------------------ execution
    def execute(self, action: Action) -> bool:
        """Commit one action (plus eager local follow-ups).

        Returns True when the step was a *stutter*: a delivery that
        left its target core structurally unchanged and enqueued
        nothing — the explorer may commit such steps without branching
        on their alternatives.
        """
        key = action.key
        kind = key[0]
        target = key[1]
        check_stutter = kind == "d" and self.model.stutter
        pre_digest = self.core_digest(target) if check_stutter else None
        self.pending.pop(key, None)
        pre_keys = frozenset(self.pending) if check_stutter else None

        if kind == "d":
            self.runtimes[target].deliver(action.msg, action.src, action.neq)
        elif kind == "l":
            self.runtimes[target].run_local(action.effect)
        else:
            name = key[2]
            self.timer_spent[(target, name)] = (
                self.timer_spent.get((target, name), 0) + 1
            )
            self.runtimes[target].fire_timer(name)

        if self.model.eager_local:
            # locals only ever target the core that queued them, so the
            # macro-step still mutates exactly one core
            self.drain_local()
        self.invalidate(target)

        if check_stutter:
            return (
                self.core_digest(target) == pre_digest
                and frozenset(self.pending) == pre_keys
            )
        return False

    def drain_local(self) -> None:
        """Run all pending local jobs to rest, in sorted-key order."""
        while True:
            local_keys = sorted(k for k in self.pending if k[0] == "l")
            if not local_keys:
                return
            for key in local_keys:
                action = self.pending.pop(key, None)
                if action is not None:
                    self.runtimes[key[1]].run_local(action.effect)

    def is_terminal(self) -> bool:
        return not self.enabled()

    # --------------------------------------------------------- fingerprints
    def invalidate(self, pid: str) -> None:
        self._core_fp.pop(pid, None)

    def invalidate_all(self) -> None:
        self._core_fp.clear()

    def core_digest(self, pid: str) -> str:
        """Cached structural digest of one core plus its armed timers."""
        fp = self._core_fp.get(pid)
        if fp is None:
            rt = self.runtimes[pid]
            fp = stable_digest((self.cores[pid], rt.timers))
            self._core_fp[pid] = fp
        return fp

    def fingerprint(self) -> str:
        """Digest of the whole state, stable across schedules and runs."""
        h = hashlib.sha256()
        for pid in sorted(self.cores):
            h.update(pid.encode())
            h.update(self.core_digest(pid).encode())
        # occurrence-stripped pending multiset: two enqueues of the
        # same payload stay distinct via multiplicity, but *which*
        # occurrence number they carry is schedule history, not state
        stripped = sorted(
            repr(k[:-1] if k[0] == "d" else k) for k in self.pending
        )
        for item in stripped:
            h.update(item.encode())
            h.update(b";")
        for (pid, name), spent in sorted(self.timer_spent.items()):
            h.update(f"t:{pid}:{name}={spent}".encode())
        return h.hexdigest()

    # ------------------------------------------------------------ snapshots
    def clone(self) -> "McWorld":
        """Deep copy for backtracking; shared environment stays shared.

        Topology, config, app, registry, model and the signers are
        immutable during exploration (the registry's MAC cache is a
        deterministic memo, so sharing it across branches is sound and
        keeps it warm), so the memo pre-seeds them as already-copied.
        """
        memo: dict[int, Any] = {}
        for shared in (self.model, self.topo, self.config, self.app,
                       self.registry):
            memo[id(shared)] = shared
        for core in self.cores.values():
            signer = getattr(core, "signer", None)
            if signer is not None:
                memo[id(signer)] = signer
        return copy.deepcopy(self, memo)


def audit_world(world: McWorld) -> SanitizerReport:
    """Evaluate the shared safety invariants against ``world``.

    ``McWorld`` satisfies :func:`repro.check.invariants.audit_safety`'s
    duck-typed cluster protocol directly (``topo``/``app``/
    ``coordinators``/``outputs``).
    """
    report = SanitizerReport()
    audit_safety(world, report)
    return report
