"""Trace shrinking and JSON reproducers for explorer findings.

A violation comes out of the DFS as the full schedule that reached the
bad terminal state.  :func:`shrink_trace` reduces it to a locally
minimal schedule with deterministic replay as the oracle:

1. *prefix search* — the shortest prefix whose resulting state already
   exhibits one of the target invariants (violations are state
   properties, so a failing prefix stays failing);
2. *greedy deletion to fixpoint* — drop one action at a time (from the
   end, where consequences live), keeping the deletion whenever the
   trace still fails; repeat until a full pass removes nothing.

Replay is skip-if-infeasible: after a deletion, later keys whose
action no longer exists (its cause was deleted) are skipped rather
than failing the replay — the oracle only cares whether the surviving
schedule still reaches a violating state.

The JSON reproducer (:class:`McReproducer`) carries the model, the
shrunk trace and the expected invariants, and replays via
``python -m repro.mc replay`` — the same pattern as ``check.fuzz``
point reproducers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.check.report import SanitizerReport
from repro.mc.model import McModel, build_world
from repro.mc.world import Action, McWorld, audit_world

__all__ = [
    "run_trace",
    "check_trace",
    "shrink_trace",
    "McReproducer",
    "reproduce",
]

#: Replay budget for one shrink: prefix search + deletion passes.
MAX_SHRINK_REPLAYS = 500


def run_trace(model: McModel, trace) -> McWorld:
    """Rebuild the world and execute ``trace``, skipping infeasible keys.

    Keys are matched by identity against the pending frontier (action
    keys are content-based, so a rebuilt world re-derives the same
    keys); timer keys fire if the timer is armed, with the occurrence
    element re-derived from the replay's own budget accounting.
    """
    world = build_world(model)
    for raw in trace:
        key = tuple(raw)
        if key[0] == "t":
            pid, name = key[1], key[2]
            rt = world.runtimes.get(pid)
            if rt is None or name not in rt.timers:
                continue
            spent = world.timer_spent.get((pid, name), 0)
            world.execute(Action(("t", pid, name, spent)))
        else:
            action = world.pending.get(key)
            if action is None:
                continue
            world.execute(action)
    return world


def check_trace(model: McModel, trace, target: set) -> SanitizerReport:
    """Replay ``trace`` and audit; a hit means the violation survives.

    Returns the report; callers test ``invariants_hit() & target``.
    """
    return audit_world(run_trace(model, trace))


def shrink_trace(model: McModel, trace, target: set):
    """Locally minimal sub-trace still hitting a ``target`` invariant."""
    trace = [tuple(k) for k in trace]
    replays = 0

    def fails(candidate) -> bool:
        nonlocal replays
        replays += 1
        report = check_trace(model, candidate, target)
        return bool(report.invariants_hit() & target)

    if not fails(trace):  # not deterministic after all — keep as-is
        return trace

    # 1. earliest failing prefix
    for length in range(1, len(trace)):
        if replays >= MAX_SHRINK_REPLAYS:
            return trace
        if fails(trace[:length]):
            trace = trace[:length]
            break

    # 2. greedy one-at-a-time deletion, to fixpoint
    changed = True
    while changed and replays < MAX_SHRINK_REPLAYS:
        changed = False
        for i in range(len(trace) - 1, -1, -1):
            if replays >= MAX_SHRINK_REPLAYS:
                break
            candidate = trace[:i] + trace[i + 1 :]
            if fails(candidate):
                trace = candidate
                changed = True
    return trace


@dataclass
class McReproducer:
    """Replayable record of one explorer finding."""

    model: McModel
    invariants: list[str]
    trace: list = field(default_factory=list)
    details: list[str] = field(default_factory=list)

    KIND = "mc-reproducer"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "model": self.model.to_dict(),
            "invariants": list(self.invariants),
            "details": list(self.details),
            "trace": [list(k) for k in self.trace],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "McReproducer":
        if data.get("kind") != cls.KIND:
            raise ValueError(
                f"not an mc reproducer: kind={data.get('kind')!r}"
            )
        return cls(
            model=McModel.from_dict(data.get("model", {})),
            invariants=list(data.get("invariants", [])),
            trace=[tuple(k) for k in data.get("trace", [])],
            details=list(data.get("details", [])),
        )


def reproduce(rep: McReproducer) -> tuple[bool, SanitizerReport]:
    """Replay a reproducer; True when an expected invariant re-fires."""
    report = check_trace(rep.model, rep.trace, set(rep.invariants))
    hit = bool(report.invariants_hit() & set(rep.invariants))
    return hit, report
