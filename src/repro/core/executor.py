"""Task execution: the EP role and the shared execution engine.

Executors are the untrusted muscle of OsirisBFT: they execute each
computation task exactly once (no replication) and stream record chunks
to the task's assigned verifier sub-cluster ([P3] of Fig 4, lines 23-31
of Algorithm 3).  Safety never depends on them — Sec 3: "safety is not
compromised even if all processes in EP are faulty" — so this code path
is also where Byzantine behaviour is injected.

The actual execution logic lives in :class:`ExecutionEngine`, a
component shared by three hosts: plain executors, verifiers that
switched roles (Sec 5.3), and verifiers running the liveness fallback
(Lemma 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.faults import ExecutorFault
from repro.core.messages import AssignmentMsg, ChunkDigestMsg, ChunkMsg
from repro.core.tasks import Assignment, Chunk, Record, chunk_records
from repro.core.worker import WorkerBase
from repro.crypto.digest import digest
from repro.crypto.signatures import Signature, verify_cost
from repro.obs.events import CATEGORY_CHUNK, ChunkEmitted

__all__ = ["ExecutionEngine", "Executor"]


@dataclass
class _PendingAssignment:
    assignment: Optional[Assignment] = None
    sigs: dict[str, Signature] = field(default_factory=dict)
    started: bool = False


class ExecutionEngine:
    """Collects signed assignments, executes tasks, streams chunks.

    An executor acts on a task only after f+1 matching signed assignment
    messages from distinct VP_CO members (coordination-free assignment,
    Sec 5.1.1); those signatures are prepended to every outgoing chunk so
    verifiers can authenticate the assignment without waiting for their
    own copies.

    Ready tasks queue locally and claim a core one at a time, so a task
    that VP_CO reassigned elsewhere can still be **cancelled** while
    queued (observing f+1 copies of the superseding assignment) — without
    this, speculative reassignment would duplicate whole backlogs instead
    of individual in-flight tasks.
    """

    def __init__(self, host: WorkerBase, fault: Optional[ExecutorFault] = None) -> None:
        self.host = host
        self.fault = fault
        self._pending: dict[tuple[str, int], _PendingAssignment] = {}
        self._foreign: dict[tuple[str, int], set[str]] = {}
        self._completed: set[tuple[str, int]] = set()
        self._ready: list[tuple[Assignment, tuple[Signature, ...]]] = []
        self._in_flight = 0
        self.tasks_executed = 0
        self.tasks_cancelled = 0

    # ------------------------------------------------------------ assignment
    def handle_assignment(self, msg: AssignmentMsg) -> None:
        """Process one VP_CO member's signed ⟨t, E, i⟩ (Algorithm 3 l.24)."""
        host = self.host
        a = msg.assignment
        if a is None or not a.task.opcode.has_compute:
            return
        if msg.sender not in host.topo.coordinator.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not host.registry.verify(a.signed_payload(), msg.sig):
            return
        quorum = host.topo.coordinator.quorum
        if a.executor != host.pid:
            # f+1 copies of a superseding assignment prove VP_CO moved the
            # task away: drop any queued (not yet started) older attempt
            voters = self._foreign.setdefault(a.key, set())
            voters.add(msg.sender)
            if len(voters) >= quorum:
                self._cancel_older(a.task.task_id, a.attempt)
            return
        entry = self._pending.setdefault(a.key, _PendingAssignment())
        if entry.assignment is None:
            entry.assignment = a
        elif entry.assignment.signed_payload() != a.signed_payload():
            return  # conflicting copy; only identical tuples accumulate
        entry.sigs[msg.sig.signer] = msg.sig
        if len(entry.sigs) >= quorum and not entry.started:
            entry.started = True
            sigs = tuple(entry.sigs.values())[:quorum]
            ts = a.task.timestamp
            host.store.when_ready(ts, lambda: self._enqueue(a, sigs))

    def _cancel_older(self, task_id: str, attempt: int) -> None:
        before = len(self._ready)
        self._ready = [
            (a, s)
            for a, s in self._ready
            if not (a.task.task_id == task_id and a.attempt < attempt)
        ]
        self.tasks_cancelled += before - len(self._ready)

    # -------------------------------------------------------------- execute
    def _enqueue(self, a: Assignment, sigs: tuple[Signature, ...]) -> None:
        host = self.host
        if host.crashed or a.key in self._completed:
            return
        self._ready.append((a, sigs))
        self._try_start()

    def _try_start(self) -> None:
        host = self.host
        while self._in_flight < host.cpu.cores and self._ready:
            a, sigs = self._ready.pop(0)
            if a.key in self._completed:
                continue
            self._completed.add(a.key)
            self._in_flight += 1
            self._run(a, sigs)

    def _run(self, a: Assignment, sigs: tuple[Signature, ...]) -> None:
        host = self.host
        fault = self.fault if self._fault_active() else None
        if fault is not None and fault.silent(a.task):
            # accepts the assignment, never outputs: omission (the core is
            # released — a silent process isn't even doing the work)
            self._in_flight -= 1
            return
        view = host.store.view(a.task.timestamp)
        result = host.app.compute(view, a.task)
        self.tasks_executed += 1
        records = list(result.records)
        cost = result.cost + verify_cost(len(sigs))
        if fault is not None:
            records = fault.transform_records(a.task, records)
            cost += fault.extra_delay(a.task)
        chunks = chunk_records(a.task.task_id, records, host.config.chunk_bytes)
        if fault is not None:
            chunks = fault.transform_chunks(a.task, chunks)
        # Occupy a core for the full compute duration; stream chunk i at the
        # (i+1)/k fraction of the job so verification overlaps execution.
        # The completion callback is *unguarded* — slot accounting must run
        # even on a crashed host — and the milestone callbacks re-check
        # ``crashed`` themselves, exactly like the raw pre-refactor path.
        k = len(chunks)
        host.run_raw_job(
            cost,
            self._task_done,
            milestones=tuple(
                (cost * (i + 1) / k, self._emit, (a, sigs, chunk, fault))
                for i, chunk in enumerate(chunks)
            ),
        )

    def _task_done(self) -> None:
        self._in_flight -= 1
        self._try_start()

    def _fault_active(self) -> bool:
        return self.fault is not None and self.fault.active(self.host.now)

    # ----------------------------------------------------------------- emit
    def _emit(
        self,
        a: Assignment,
        sigs: tuple[Signature, ...],
        chunk: Chunk,
        fault: Optional[ExecutorFault],
    ) -> None:
        host = self.host
        if host.crashed:
            return
        if fault is not None and chunk.final and fault.suppress_final_chunk(a.task):
            return
        members = host.topo.cluster(a.vp_index).members
        sigma = digest(chunk)
        if host.wants(CATEGORY_CHUNK):
            host.emit(
                ChunkEmitted(
                    time=host.now,
                    pid=host.pid,
                    task_id=chunk.task_id,
                    index=chunk.index,
                    records=len(chunk.records),
                    nbytes=chunk.payload_bytes(),
                    final=chunk.final,
                )
            )
        if fault is not None and fault.equivocate(a.task):
            # plain-channel equivocation: different verifiers see different
            # contents; the digest below still travels via the primitive
            # and exposes the lie.
            for j, pid in enumerate(members):
                variant = chunk
                if j >= host.topo.coordinator.quorum:
                    tampered = tuple(
                        Record(r.key, "<equivocated>", r.size_bytes)
                        for r in chunk.records
                    )
                    variant = Chunk(chunk.task_id, chunk.index, tampered, chunk.final)
                host.send(
                    pid,
                    ChunkMsg(chunk=variant, assignment=a, assignment_sigs=sigs),
                )
        else:
            msg = ChunkMsg(chunk=chunk, assignment=a, assignment_sigs=sigs)
            host.multicast(members, msg)
        host.neq_multicast(
            members,
            ChunkDigestMsg(
                task_id=a.task.task_id,
                attempt=a.attempt,
                index=chunk.index,
                digest=sigma,
            ),
        )


class Executor(WorkerBase):
    """A plain EP member: state replica + execution engine."""

    def __init__(self, *args, fault: Optional[ExecutorFault] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.engine = ExecutionEngine(self, fault)

    @property
    def fault(self) -> Optional[ExecutorFault]:
        return self.engine.fault

    def on_AssignmentMsg(self, msg: AssignmentMsg) -> None:
        self.engine.handle_assignment(msg)
