"""The verifiable-application API: ⟨U, A⟩ plus the verification operators.

This is the paper's Algorithm 1 surface.  An application is *verifiable*
when it satisfies Task-Validity, Task-Scope, Task-Ordered and
Task-Bounded (Sec 4.3); implementing this interface is how an
application proves it:

* ``valid_task``       — Task-Validity (membership of T is decidable);
* ``is_valid``         — Task-Scope (membership of R / A(s,t) is
  decidable per record);
* ``happens_before``   — Task-Ordered (A(s,t) is totally ordered);
* ``output_size``      — Task-Bounded (|A(s,t)| is finite and computable
  without materializing every record).

Computation functions return explicit simulated CPU costs: the paper's
central premise is that computing A is orders of magnitude more
expensive than verifying its output, and the cost model is where that
asymmetry lives.  Application algorithms in :mod:`repro.apps` run for
real and derive costs from actual work counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.core.tasks import Record, Task
from repro.store.state_machine import VersionedState

__all__ = ["ComputeResult", "CountResult", "VerifiableApplication"]


@dataclass(frozen=True)
class ComputeResult:
    """Output of A(s, t): the record sequence and its CPU cost (seconds)."""

    records: tuple[Record, ...]
    cost: float


@dataclass(frozen=True)
class CountResult:
    """Output of ``output_size``: |A(s, t)| and its CPU cost (seconds)."""

    count: int
    cost: float


class VerifiableApplication(ABC):
    """A task-parallel application with verification operators.

    Implementations must be **deterministic**: every correct process
    evaluating these functions on the same snapshot and task must get the
    same answer — that is what lets verifiers check executors without
    re-running A.
    """

    #: Human-readable application name (used in benchmark reports).
    name: str = "application"

    # --------------------------------------------------------------- state
    @abstractmethod
    def initial_state(self) -> VersionedState:
        """Fresh application state replica (one per worker process)."""

    # ------------------------------------------------------------ the pair
    @abstractmethod
    def valid_task(self, task: Task) -> bool:
        """Task-Validity: whether ``task`` ∈ T (checked by VP_CO at [P1])."""

    @abstractmethod
    def compute(self, view: Any, task: Task) -> ComputeResult:
        """A(s, t): run the computation on snapshot ``view``.

        Records must come back sorted by ``Record.key`` with no duplicate
        keys (the Task-Ordered contract).  U is *not* invoked here — state
        updates flow through ``VersionedState.apply``.
        """

    # ------------------------------------------- verification operators
    @abstractmethod
    def is_valid(self, view: Any, record: Record, task: Task) -> bool:
        """Algorithm 1 ``isValid``: r ∈ R and r ∈ A(s, t)."""

    def happens_before(self, a: Record, b: Record) -> bool:
        """Algorithm 1 ``happensBefore``: process-local program order.

        Default: lexicographic comparison of record keys, the
        prefix-ordering produced by pattern-matching systems (Algorithm 2)
        and by all apps in this repo.  Override for exotic orders.
        """
        return a.key < b.key

    @abstractmethod
    def output_size(self, view: Any, task: Task) -> CountResult:
        """Algorithm 1 ``outputSize``: exact |A(s, t)| without listing.

        Must be much cheaper than ``compute`` (e.g. inclusion-exclusion
        counting for pattern matching); the returned cost should reflect
        that.
        """

    # ------------------------------------------------------------ cost model
    def verify_record_cost(self, record: Record) -> float:
        """Simulated CPU cost for one ``is_valid`` + ordering check.

        Default assumes verification is cheap and roughly proportional to
        record size; applications override with measured ratios.
        """
        return 0.5e-6

    def update_size_bytes(self, task: Task) -> int:
        """Wire size of a state-update broadcast for ``task``."""
        return task.size_bytes
