"""Compatibility shim: the deployment builder moved to
:mod:`repro.runtime.deploy`.

The builder is where pure cores meet the DES backend, so it lives with
the runtime layer now.  Names are re-exported lazily (PEP 562) — an
eager import would cycle through ``repro.runtime.des`` while the core
package is still initializing.
"""

from __future__ import annotations

__all__ = ["OsirisCluster", "build_osiris_cluster", "default_cluster_count"]


def __getattr__(name: str):
    if name in __all__:
        import repro.runtime.deploy as deploy

        return getattr(deploy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
