"""The coordinator sub-cluster VP_CO.

VP_CO linearizes tasks via BFT consensus, assigns monotonically
increasing timestamps to state updates, distributes computation tasks
(Algorithm 3, [P1]-[P2]), and makes every *cluster-management* decision:
speculative reassignment, blacklisting of proven-Byzantine executors,
dynamic role-switching (Sec 5.3) and the liveness fallback (Lemma 6.4).

Management decisions are themselves routed through the same consensus
instance as *control operations* with deterministic request ids: any
member that gathers f+1 suspect reports submits the control op; the
group commits it once; every member then acts on identical state.  That
is what keeps the coordination-free assignment scheme sound — executors
demand f+1 *matching* signed assignments, which requires all correct
coordinator members to compute the same ⟨t, E, i, attempt⟩ tuple.

Coordinator members extend :class:`~repro.core.verifier.Verifier`: when
the deployment has a single verifier sub-cluster, VP_CO also verifies
record chunks itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.consensus.fast_robust import ConsensusMember
from repro.core.messages import (
    AssignmentMsg,
    FallbackExecuteMsg,
    OutputSizeReport,
    RoleSwitchMsg,
    StateUpdateMsg,
    SuspectExecutorMsg,
    TaskCompleteMsg,
)
from repro.core.tasks import Assignment, Task
from repro.core.verifier import Verifier
from repro.crypto.signatures import Signature, sign_cost
from repro.obs.events import (
    CATEGORY_TASK,
    RoleSwitch,
    TaskAssigned,
    TaskFallback,
    TaskLinearized,
    TaskReassigned,
)

__all__ = ["Coordinator"]


def _ctl_signed_payload(ctl: dict) -> list:
    """Canonical signing payload of a control op (everything but the sig)."""
    return ["ctl"] + sorted(
        (k, v) for k, v in ctl.items() if k != "sig"
    )


@dataclass
class _TaskEntry:
    """Deterministic per-task state shared by all correct members."""

    task: Task
    seq: int
    executor: Optional[str] = None
    vp_index: int = -1
    attempt: int = 0
    done: bool = False
    fallback: bool = False
    expected_records: Optional[int] = None


class Coordinator(Verifier):
    """One member of VP_CO."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        from repro.consensus.pbft import PbftMember

        # with the non-equivocating primitive, 2f+1 consensus [3]; without
        # it, classic 3f+1 PBFT (Sec 3)
        member_cls = (
            ConsensusMember if self.config.non_equivocation else PbftMember
        )
        self.consensus = member_cls(
            host=self,
            registry=self.registry,
            signer=self.signer,
            group=self.topo.coordinator,
            on_commit=self._on_commit,
            validate=self._validate,
            batch_delay=self.config.consensus_batch_delay,
            base_view_timeout=self.config.consensus_view_timeout,
        )
        # deterministic replicated state (driven only by commits)
        self.ts_counter = 0
        self.task_seq = 0
        self.outstanding: dict[str, _TaskEntry] = {}
        self.blacklist: set[str] = set()
        self.switched: set[int] = set()
        self.ctl_epoch = 0
        self._unassigned: list[str] = []
        # local observation state (quorum counting)
        self._suspect_votes: dict[tuple[str, int, bool], set[str]] = {}
        self._complete_votes: dict[str, set[str]] = {}
        self._size_reports: dict[str, int] = {}
        from collections import defaultdict

        self._load_reports: dict[int, dict[str, tuple[float, int]]] = (
            defaultdict(dict)
        )
        self._out_streak = 0
        self._in_streak = 0
        self._switch_cooldown = 0
        self.tasks_linearized = 0

    def on_bind(self) -> None:
        super().on_bind()
        if self.config.role_switching:
            self.set_timer(
                "role-policy",
                self.config.role_switch_interval,
                self._role_policy_tick,
            )

    # ------------------------------------------------------------ validation
    def _validate(self, payload: Any) -> bool:
        """Gate at [P1]: Task-Validity for tasks, member signatures for
        control ops (Algorithm 3 line 3)."""
        if isinstance(payload, Task):
            return self.app.valid_task(payload)
        if isinstance(payload, dict) and "kind" in payload:
            sig = payload.get("sig")
            if not isinstance(sig, Signature):
                return False
            if sig.signer not in self.topo.coordinator.members:
                return False
            return self.registry.verify(_ctl_signed_payload(payload), sig)
        return False

    @property
    def _reporter(self) -> bool:
        """Only one member emits *replicated* decisions on the bus.

        Control-op commits happen at every correct VP_CO member; gating on
        the first member keeps cluster-level trace events (reassignments,
        role switches, fallbacks) deduplicated.  Per-member observations
        (fault detections, elections) are emitted ungated.
        """
        return self.pid == self.topo.coordinator.members[0]

    def _report(self, event) -> None:
        """Emit a cluster-level event, deduplicated to the reporter."""
        if self._reporter:
            self.emit(event)

    # ---------------------------------------------------------------- pools
    def _executor_pool(self) -> list[str]:
        pool = [e for e in self.topo.executor_pids if e not in self.blacklist]
        for idx in sorted(self.switched):
            pool.extend(
                m
                for m in self.topo.cluster(idx).members
                if m not in self.blacklist
            )
        return pool

    def _verifier_pool(self) -> list[int]:
        return [
            c.index
            for c in self.topo.worker_clusters
            if c.index not in self.switched
        ]

    # --------------------------------------------------------------- commits
    def _on_commit(self, seq: int, batch: tuple) -> None:
        for _rid, payload, _size in batch:
            if isinstance(payload, Task):
                self._commit_task(payload)
            else:
                self._commit_control(payload)

    def _commit_task(self, task: Task) -> None:
        """[P2]: timestamp, broadcast updates, assign computations."""
        self.tasks_linearized += 1
        if task.opcode.has_update:
            self.ts_counter += 1
        stamped = task.with_timestamp(self.ts_counter)
        if self.wants(CATEGORY_TASK):
            self._report(
                TaskLinearized(
                    time=self.now,
                    pid=self.pid,
                    task_id=task.task_id,
                    timestamp=self.ts_counter,
                )
            )
        if task.opcode.has_update:
            self.apply_update_locally(stamped)
            msg = StateUpdateMsg(task=stamped)
            msg.sig = self.signer.sign(msg.signed_payload())
            targets = [
                pid
                for pid in self.topo.worker_pids()
                if pid not in self.topo.coordinator.members
            ]
            if targets:
                self.run_ctrl_job(
                    sign_cost(1),
                    lambda m=msg, t=tuple(targets): self.multicast(t, m),
                )
        if task.opcode.has_compute:
            self.task_seq += 1
            entry = _TaskEntry(task=stamped, seq=self.task_seq)
            self.outstanding[task.task_id] = entry
            self._assign(entry)

    def _assign(self, entry: _TaskEntry) -> None:
        """getNextExecutorAndVP (Algorithm 3 line 8), deterministically."""
        pool = self._executor_pool()
        vps = self._verifier_pool()
        if not pool:
            # no live executors at all: Lemma 6.4's worst case — a
            # verifier sub-cluster executes the task itself
            self._fallback(entry)
            return
        if not vps:
            if entry.task.task_id not in self._unassigned:
                self._unassigned.append(entry.task.task_id)
            return
        prev_executor = entry.executor
        entry.executor = pool[(entry.seq + entry.attempt) % len(pool)]
        entry.vp_index = vps[entry.seq % len(vps)]
        if self.wants(CATEGORY_TASK):
            self._report(
                TaskAssigned(
                    time=self.now,
                    pid=self.pid,
                    task_id=entry.task.task_id,
                    executor=entry.executor,
                    attempt=entry.attempt,
                )
            )
        assignment = Assignment(
            task=entry.task,
            executor=entry.executor,
            vp_index=entry.vp_index,
            attempt=entry.attempt,
        )
        sig = self.signer.sign(assignment.signed_payload())
        msg = AssignmentMsg(assignment=assignment, sig=sig)
        targets = [entry.executor] + list(
            self.topo.cluster(entry.vp_index).members
        )
        if prev_executor is not None and prev_executor not in targets:
            # the displaced executor learns of the superseding assignment
            # so it can drop the still-queued older attempt
            targets.append(prev_executor)
        self.run_ctrl_job(
            sign_cost(1),
            lambda m=msg, t=tuple(targets): self.multicast(t, m),
        )

    def _drain_unassigned(self) -> None:
        waiting, self._unassigned = self._unassigned, []
        for tid in waiting:
            entry = self.outstanding.get(tid)
            if entry is not None and not entry.done:
                self._assign(entry)

    # ------------------------------------------------------------ control ops
    def _submit_ctl(self, rid: str, ctl: dict) -> None:
        """Route a management decision through consensus (dedup by rid)."""
        ctl = dict(ctl)
        ctl["sig"] = self.signer.sign(_ctl_signed_payload(ctl))
        from repro.consensus.messages import CsRequest

        for pid in self.topo.coordinator.members:
            if pid == self.pid:
                self.consensus._admit(rid, ctl, 128)
            else:
                self.send(
                    pid,
                    CsRequest(request_id=rid, payload=ctl, payload_size=128),
                )

    def _commit_control(self, ctl: dict) -> None:
        kind = ctl.get("kind")
        if kind == "reassign":
            self._ctl_reassign(ctl["task_id"], ctl["from_attempt"])
        elif kind == "blacklist":
            self._ctl_blacklist(ctl["executor"])
        elif kind == "role_switch":
            self._ctl_role_switch(
                ctl["vp_index"], bool(ctl["to_executor"]), ctl["epoch"]
            )

    def _ctl_reassign(self, task_id: str, from_attempt: int) -> None:
        entry = self.outstanding.get(task_id)
        if entry is None or entry.done or entry.attempt != from_attempt:
            return
        entry.attempt += 1
        if entry.attempt > self.config.max_attempts:
            self._fallback(entry)
            return
        self._report(
            TaskReassigned(
                time=self.now,
                pid=self.pid,
                task_id=task_id,
                attempt=entry.attempt,
            )
        )
        self._assign(entry)

    def _ctl_blacklist(self, executor: str) -> None:
        """markByzantineExecutor + reassignAllTasks (Algorithm 4 l.40-42)."""
        if executor in self.blacklist:
            return
        self.blacklist.add(executor)
        for entry in self.outstanding.values():
            if entry.executor == executor and not entry.done:
                entry.attempt += 1
                if entry.attempt > self.config.max_attempts:
                    self._fallback(entry)
                else:
                    self._report(
                        TaskReassigned(
                            time=self.now,
                            pid=self.pid,
                            task_id=entry.task.task_id,
                            attempt=entry.attempt,
                        )
                    )
                    self._assign(entry)

    def _ctl_role_switch(self, vp_index: int, to_executor: bool, epoch: int) -> None:
        if epoch != self.ctl_epoch + 1:
            return
        if vp_index not in {c.index for c in self.topo.worker_clusters}:
            return
        if to_executor:
            if (
                vp_index in self.switched
                or len(self._verifier_pool()) <= self.config.min_verifier_clusters
            ):
                return
            self.switched.add(vp_index)
        else:
            if vp_index not in self.switched:
                return
            self.switched.discard(vp_index)
        self.ctl_epoch = epoch
        self._report(
            RoleSwitch(
                time=self.now,
                pid=self.pid,
                vp_index=vp_index,
                to_executor=to_executor,
            )
        )
        msg = RoleSwitchMsg(
            vp_index=vp_index, epoch=epoch, to_executor=to_executor
        )
        msg.sig = self.signer.sign(msg.signed_payload())
        self.multicast(self.topo.cluster(vp_index).members, msg)
        self._drain_unassigned()
        if to_executor:
            self._rebalance_to(set(self.topo.cluster(vp_index).members))

    def _rebalance_to(self, new_members: set[str]) -> None:
        """Speculatively re-issue part of the outstanding backlog to
        executors that just joined the pool.  The original assignee keeps
        computing; verifiers accept whichever attempt finishes first, so
        this is safe duplication bounded by |new|/|pool| of the backlog."""
        pool = self._executor_pool()
        if not pool:
            return
        for entry in self.outstanding.values():
            if entry.done or entry.executor is None:
                continue
            candidate = pool[(entry.seq + entry.attempt + 1) % len(pool)]
            if candidate in new_members:
                entry.attempt += 1
                self._assign(entry)

    def _fallback(self, entry: _TaskEntry) -> None:
        """Lemma 6.4: hand the task to a verifier sub-cluster outright."""
        entry.done = True
        entry.fallback = True
        vps = self._verifier_pool() or [
            c.index for c in self.topo.worker_clusters
        ]
        vp_index = vps[entry.seq % len(vps)]
        self._report(
            TaskFallback(
                time=self.now, pid=self.pid, task_id=entry.task.task_id
            )
        )
        msg = FallbackExecuteMsg(task=entry.task, vp_index=vp_index)
        msg.sig = self.signer.sign(msg.signed_payload())
        self.multicast(self.topo.cluster(vp_index).members, msg)

    # ----------------------------------------------------- verifier reports
    def on_SuspectExecutorMsg(self, msg: SuspectExecutorMsg) -> None:
        entry = self.outstanding.get(msg.task_id)
        if entry is None or entry.done:
            return
        if msg.attempt != entry.attempt or msg.executor != entry.executor:
            return
        if entry.vp_index < 0:
            return
        vp = self.topo.cluster(entry.vp_index)
        if msg.sender not in vp.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(msg.signed_payload(), msg.sig):
            return
        key = (msg.task_id, msg.attempt, msg.byzantine)
        votes = self._suspect_votes.setdefault(key, set())
        votes.add(msg.sender)
        if len(votes) < vp.quorum:
            return
        if msg.byzantine:
            self._submit_ctl(
                f"ctl:blacklist:{msg.executor}",
                {"kind": "blacklist", "executor": msg.executor},
            )
        else:
            self._submit_ctl(
                f"ctl:reassign:{msg.task_id}:{msg.attempt}",
                {
                    "kind": "reassign",
                    "task_id": msg.task_id,
                    "from_attempt": msg.attempt,
                },
            )

    def on_TaskCompleteMsg(self, msg: TaskCompleteMsg) -> None:
        entry = self.outstanding.get(msg.task_id)
        if entry is None or entry.done or entry.vp_index < 0:
            return
        vp = self.topo.cluster(entry.vp_index)
        if msg.sender not in vp.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(msg.signed_payload(), msg.sig):
            return
        votes = self._complete_votes.setdefault(msg.task_id, set())
        votes.add(msg.sender)
        if len(votes) >= vp.quorum:
            entry.done = True

    def on_VerifierLoadReport(self, msg) -> None:
        """Track per-member utilization, keyed by sub-cluster."""
        cluster = self.topo.cluster_of(msg.sender)
        if cluster is None or cluster.index != msg.vp_index:
            return
        self._load_reports[msg.vp_index][msg.sender] = (
            msg.utilization,
            msg.pending_chunks,
        )

    def _cluster_utilization(self, vp_index: int) -> Optional[float]:
        """Median member utilization (robust to one Byzantine liar)."""
        reports = self._load_reports.get(vp_index)
        if not reports:
            return None
        utils = sorted(u for u, _ in reports.values())
        return utils[len(utils) // 2]

    def on_OutputSizeReport(self, msg: OutputSizeReport) -> None:
        entry = self.outstanding.get(msg.task_id)
        if entry is None:
            return
        if entry.vp_index >= 0 and msg.sender not in self.topo.cluster(
            entry.vp_index
        ).members:
            return
        self._size_reports.setdefault(msg.task_id, msg.count)
        if entry.expected_records is None:
            entry.expected_records = msg.count

    # --------------------------------------------------- role-switch policy
    def _role_policy_tick(self) -> None:
        """Sec 5.3's control loop, driven by reported verifier CPU
        utilization with hysteresis in both directions."""
        self.set_timer(
            "role-policy",
            self.config.role_switch_interval,
            self._role_policy_tick,
        )
        if self._switch_cooldown > 0:
            self._switch_cooldown -= 1
            return
        pool = len(self._executor_pool())
        active = self._verifier_pool()
        out = sum(1 for e in self.outstanding.values() if not e.done)
        # clusters eligible for lending: active, not VP_CO, with a load
        # report showing idle capacity
        candidates = [
            (util, idx)
            for idx in active
            if idx != self.topo.coordinator.index
            for util in [self._cluster_utilization(idx)]
            if util is not None and util < self.config.switch_out_util
        ]
        active_utils = [
            u
            for idx in active
            for u in [self._cluster_utilization(idx)]
            if u is not None
        ]
        mean_active_util = (
            sum(active_utils) / len(active_utils) if active_utils else None
        )
        want_out = (
            (pool == 0 or out > self.config.switch_out_backlog * pool)
            and len(active) > self.config.min_verifier_clusters
            and bool(candidates)
            # individual idleness can be round-robin variance; require the
            # verification tier as a whole to be under-utilized too
            and mean_active_util is not None
            and mean_active_util < self.config.switch_out_util
        )
        want_in = bool(
            self.switched
            and active_utils
            and sum(active_utils) / len(active_utils)
            > self.config.switch_in_util
        )
        # hysteresis: the condition must persist for `switch_patience`
        # consecutive ticks (an emptied executor pool acts immediately)
        self._out_streak = self._out_streak + 1 if want_out else 0
        self._in_streak = self._in_streak + 1 if want_in else 0
        urgent = pool == 0 and len(active) > self.config.min_verifier_clusters
        if (self._out_streak >= self.config.switch_patience or urgent) and (
            want_out or urgent
        ):
            non_co = [
                idx for idx in active if idx != self.topo.coordinator.index
            ]
            if candidates:
                _, vp = min(candidates)
            elif urgent and non_co:
                vp = max(non_co)
            else:
                return
            self._out_streak = 0
            self._switch_cooldown = self.config.switch_cooldown
            self._submit_ctl(
                f"ctl:roleswitch:{self.ctl_epoch + 1}",
                {
                    "kind": "role_switch",
                    "vp_index": vp,
                    "to_executor": True,
                    "epoch": self.ctl_epoch + 1,
                },
            )
        elif self._in_streak >= self.config.switch_patience:
            vp = min(self.switched)
            self._in_streak = 0
            self._switch_cooldown = self.config.switch_cooldown
            self._submit_ctl(
                f"ctl:roleswitch:{self.ctl_epoch + 1}",
                {
                    "kind": "role_switch",
                    "vp_index": vp,
                    "to_executor": False,
                    "epoch": self.ctl_epoch + 1,
                },
            )
