"""The OsirisBFT architecture: verification-based BFT processing.

Public surface:

* :func:`build_osiris_cluster` — wire a deployment on the simulator.
* :class:`VerifiableApplication` — the ⟨U, A⟩ + verification-operator
  API applications implement (Algorithm 1).
* :class:`OsirisConfig` — deployment tunables.
* :class:`Task` / :class:`Record` / :class:`Opcode` — the data plane.
* :mod:`repro.core.faults` — Byzantine fault injection strategies.
"""

from repro.core.api import ComputeResult, CountResult, VerifiableApplication
from repro.core.config import OsirisConfig
from repro.core.coordinator import Coordinator
from repro.core.executor import ExecutionEngine, Executor
from repro.core.failure_model import OutputFailure, classify_output, operators_accept
from repro.core.input_output import InputProcess, OutputProcess
from repro.core.metrics import MetricsHub
from repro.core.tasks import Assignment, Chunk, Opcode, Record, Task, chunk_records
from repro.core.verifier import Verifier

_DEPLOY_NAMES = ("OsirisCluster", "build_osiris_cluster", "default_cluster_count")


def __getattr__(name: str):
    # The deployment builder lives in repro.runtime.deploy (it binds
    # cores to the DES backend); resolving it lazily keeps this package
    # import-light and cycle-free.
    if name in _DEPLOY_NAMES:
        import repro.runtime.deploy as deploy

        return getattr(deploy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Assignment",
    "Chunk",
    "ComputeResult",
    "Coordinator",
    "CountResult",
    "ExecutionEngine",
    "Executor",
    "InputProcess",
    "MetricsHub",
    "Opcode",
    "OsirisCluster",
    "OutputFailure",
    "classify_output",
    "operators_accept",
    "OsirisConfig",
    "OutputProcess",
    "Record",
    "Task",
    "VerifiableApplication",
    "Verifier",
    "build_osiris_cluster",
    "chunk_records",
    "default_cluster_count",
]
