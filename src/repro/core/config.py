"""Deployment configuration for OsirisBFT clusters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = ["OsirisConfig"]


@dataclass
class OsirisConfig:
    """Tunables of a deployment; defaults follow the paper's Sec 7 setup.

    Attributes
    ----------
    f:
        Failures tolerated per verifier sub-cluster.
    chunk_bytes:
        Max record-chunk payload ("1MB record chunks" in the paper; the
        benchmark harness scales this with its workloads).
    suspect_timeout:
        Base speculative-reassignment timeout; doubled per attempt
        ("timeout values are calibrated empirically between 500ms and 5s").
    op_timeout:
        OP-side wait before reporting a negligent leader / equivocation,
        doubled per report.
    max_attempts:
        Reassignments before falling back to execution by a verifier
        sub-cluster (Lemma 6.4's worst-case liveness path).
    role_switching / role_switch_interval:
        Dynamic role-switching (Sec 5.3) and its control-loop period.
    switch_out_backlog / switch_out_util / switch_in_util:
        Role-switching hysteresis: lend a verifier cluster to execution
        when the compute backlog per executor exceeds
        ``switch_out_backlog`` tasks AND that cluster's reported CPU
        utilization is below ``switch_out_util``; recall a lent cluster
        when the remaining active clusters' mean utilization exceeds
        ``switch_in_util``.
    min_verifier_clusters:
        Never switch below this many active verifier clusters.
    cores_per_node:
        App cores per process (paper: 8 logical minus 1 for networking).
    non_equivocation:
        Whether the non-equivocating multicast primitive is available;
        without it sub-clusters need 3f+1 members (Sec 3).
    admission_queue / admission_rate:
        IP-side admission control for open-loop traffic.  ``None`` for
        both (the default) keeps the exact legacy submit path: every
        arrival is forwarded immediately.  ``admission_queue`` bounds
        the IP's ingress queue — arrivals past the bound are *rejected*
        (shed).  ``admission_rate`` drains the queue at that many
        submits/second; arrivals that must wait behind the drain are
        counted as *deferred*.
    """

    f: int = 1
    chunk_bytes: int = 1_000_000
    suspect_timeout: float = 0.5
    op_timeout: float = 0.25
    max_attempts: int = 3
    role_switching: bool = True
    role_switch_interval: float = 1.0
    switch_out_backlog: float = 4.0
    switch_out_util: float = 0.5
    switch_in_util: float = 0.85
    #: consecutive policy ticks a condition must hold before acting, and
    #: ticks to wait after any switch — damps oscillation
    switch_patience: int = 3
    switch_cooldown: int = 5
    min_verifier_clusters: int = 1
    cores_per_node: int = 7
    non_equivocation: bool = True
    consensus_batch_delay: float = 0.5e-3
    consensus_view_timeout: float = 50e-3
    retained_outputs: int = 128
    admission_queue: int | None = None
    admission_rate: float | None = None

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ProtocolError("f must be >= 1 (use the ZFT baseline for f=0)")
        if self.chunk_bytes <= 0:
            raise ProtocolError("chunk_bytes must be positive")
        if self.max_attempts < 1:
            raise ProtocolError("max_attempts must be >= 1")
        if self.admission_queue is not None and self.admission_queue < 1:
            raise ProtocolError("admission_queue must be >= 1 when set")
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise ProtocolError("admission_rate must be positive when set")

    @property
    def subcluster_size(self) -> int:
        """Members per verifier sub-cluster: 2f+1 with non-equivocation,
        3f+1 without (Sec 3)."""
        return (2 if self.non_equivocation else 3) * self.f + 1
