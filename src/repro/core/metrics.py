"""Cluster-wide metrics collection.

One :class:`MetricsHub` per deployment records everything the paper's
evaluation section measures: output-record throughput (records/sec over a
measurement window, Fig 5/6/7), task latency (Fig 6e), per-second
throughput traces (Figs 6d, 7a), OP-link bandwidth (Sec 7.2), executor
CPU utilization (Sec 7.2), detected faults, reassignments and
role-switch events.

The hub is a :class:`~repro.obs.bus.Sink` over the observability bus:
deployments attach it to ``sim.bus`` and protocol roles emit typed
events instead of calling the hub directly.  The ``on_*`` methods remain
the accumulation API (and stay directly callable, e.g. from tests); the
query API is unchanged.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.stats import StreamingPercentiles
from repro.errors import BenchmarkError
from repro.obs.bus import Sink
from repro.obs.events import (
    CATEGORY_FAULT,
    CATEGORY_TASK,
    EquivocationReported,
    FaultDetected,
    LeaderElection,
    RecordsAccepted,
    RoleSwitch,
    TaskAdmitted,
    TaskCompleted,
    TaskDeferred,
    TaskFallback,
    TaskOutcome,
    TaskReassigned,
    TaskRejected,
    TaskSubmitted,
    TraceEvent,
)

__all__ = ["MetricsHub"]


class MetricsHub(Sink):
    """Accumulates deployment-wide observations keyed by simulated time."""

    categories = frozenset({CATEGORY_TASK, CATEGORY_FAULT})

    def __init__(self, bin_seconds: float = 1.0) -> None:
        if bin_seconds <= 0:
            raise BenchmarkError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        self.records_accepted = 0
        self._record_bins: dict[int, int] = {}
        self._accept_events: list[tuple[float, int]] = []
        self._task_submit: dict[str, float] = {}
        self.task_latencies: list[float] = []
        #: streaming accumulator behind the p50/p99/p999 SLO fields —
        #: O(log range) memory even for million-task open-loop runs
        self.slo_latency = StreamingPercentiles()
        self.tasks_completed = 0
        self._completed_ids: set[str] = set()
        self._outcome_ids: set[str] = set()
        self._tenant_latency: dict[str, StreamingPercentiles] = {}
        self._shard_completions: dict[str, int] = {}
        self.tasks_admitted = 0
        self.tasks_deferred = 0
        self.tasks_rejected = 0
        self.completion_times: list[float] = []
        self.faults_detected: list[tuple[float, str, str]] = []
        self.reassignments: list[tuple[float, str, int]] = []
        self.role_switches: list[tuple[float, int, bool]] = []
        self.fallbacks: list[tuple[float, str]] = []
        self.leader_elections: list[tuple[float, int, int]] = []
        self.equivocation_reports: list[tuple[float, str, int]] = []

    # ----------------------------------------------------------------- sink
    def handle(self, event: TraceEvent) -> None:
        """Bus entry point: dispatch a typed event to its ``on_*`` method."""
        fn = self._DISPATCH.get(type(event))
        if fn is not None:
            fn(self, event)

    # --------------------------------------------------------------- events
    def on_task_submitted(self, task_id: str, time: float) -> None:
        """IP handed a task to the coordinator."""
        self._task_submit.setdefault(task_id, time)

    def on_records_accepted(self, count: int, time: float) -> None:
        """OP accepted ``count`` verified records at ``time``."""
        self.records_accepted += count
        idx = int(time // self.bin_seconds)
        self._record_bins[idx] = self._record_bins.get(idx, 0) + count
        self._accept_events.append((time, count))

    def on_task_output_complete(
        self, task_id: str, time: float, pid: str = ""
    ) -> None:
        """OP saw the final verified chunk of a task.  Deduplicated by
        task id: with multiple output processes, the first acceptance
        defines completion (records_accepted, by contrast, sums over all
        OPs since each received its own copy)."""
        if task_id in self._completed_ids:
            return
        self._completed_ids.add(task_id)
        self.tasks_completed += 1
        self.completion_times.append(time)
        if pid:
            self._shard_completions[pid] = (
                self._shard_completions.get(pid, 0) + 1
            )
        start = self._task_submit.get(task_id)
        if start is not None:
            self.task_latencies.append(time - start)
            self.slo_latency.add(time - start)

    def on_task_outcome(
        self, task_id: str, tenant: str, submitted_at: float, time: float
    ) -> None:
        """Tenant-tagged completion (multi-tenant runs only), dedup'd
        like completions."""
        if task_id in self._outcome_ids:
            return
        self._outcome_ids.add(task_id)
        acc = self._tenant_latency.get(tenant)
        if acc is None:
            acc = self._tenant_latency[tenant] = StreamingPercentiles()
        acc.add(time - submitted_at)

    def on_task_admitted(self) -> None:
        self.tasks_admitted += 1

    def on_task_deferred(self) -> None:
        self.tasks_deferred += 1

    def on_task_rejected(self) -> None:
        self.tasks_rejected += 1

    def on_fault_detected(self, time: float, kind: str, culprit: str) -> None:
        """A verifier proved a process faulty (``kind`` names the check)."""
        self.faults_detected.append((time, kind, culprit))

    def on_reassignment(self, time: float, task_id: str, attempt: int) -> None:
        """VP_CO speculatively reassigned a task."""
        self.reassignments.append((time, task_id, attempt))

    def on_role_switch(self, time: float, vp_index: int, to_executor: bool) -> None:
        """A verifier sub-cluster switched between roles."""
        self.role_switches.append((time, vp_index, to_executor))

    def on_fallback(self, time: float, task_id: str) -> None:
        """A task fell back to execution by a verifier sub-cluster."""
        self.fallbacks.append((time, task_id))

    def on_leader_election(self, time: float, vp_index: int, term: int) -> None:
        """A sub-cluster elected a new leader after a negligence report."""
        self.leader_elections.append((time, vp_index, term))

    def on_equivocation_report(self, time: float, task_id: str, index: int) -> None:
        """OP reported a partially-delivered chunk digest set."""
        self.equivocation_reports.append((time, task_id, index))

    #: Event-type → accumulator, resolved once at class-definition time.
    _DISPATCH: dict[type, Callable[["MetricsHub", TraceEvent], None]] = {
        TaskSubmitted: lambda m, e: m.on_task_submitted(e.task_id, e.time),
        RecordsAccepted: lambda m, e: m.on_records_accepted(e.count, e.time),
        TaskCompleted: lambda m, e: m.on_task_output_complete(
            e.task_id, e.time, e.pid
        ),
        TaskOutcome: lambda m, e: m.on_task_outcome(
            e.task_id, e.tenant, e.submitted_at, e.time
        ),
        TaskAdmitted: lambda m, e: m.on_task_admitted(),
        TaskDeferred: lambda m, e: m.on_task_deferred(),
        TaskRejected: lambda m, e: m.on_task_rejected(),
        FaultDetected: lambda m, e: m.on_fault_detected(e.time, e.reason, e.culprit),
        TaskReassigned: lambda m, e: m.on_reassignment(e.time, e.task_id, e.attempt),
        RoleSwitch: lambda m, e: m.on_role_switch(e.time, e.vp_index, e.to_executor),
        TaskFallback: lambda m, e: m.on_fallback(e.time, e.task_id),
        LeaderElection: lambda m, e: m.on_leader_election(e.time, e.vp_index, e.term),
        EquivocationReported: lambda m, e: m.on_equivocation_report(
            e.time, e.task_id, e.index
        ),
    }

    # -------------------------------------------------------------- queries
    def throughput(self, start: float, end: float) -> float:
        """Mean accepted records/second over [start, end)."""
        if end <= start:
            raise BenchmarkError("empty throughput window")
        lo = int(start // self.bin_seconds)
        hi = int(math.ceil(end / self.bin_seconds))
        if hi - lo > len(self._record_bins):
            # sparse bins: a long window over a short burst should cost
            # O(populated bins), not O(window/bin_seconds)
            total = sum(
                c for i, c in self._record_bins.items() if lo <= i < hi
            )
        else:
            total = sum(self._record_bins.get(i, 0) for i in range(lo, hi))
        return total / (end - start)

    def throughput_series(self) -> list[tuple[float, float]]:
        """Per-bin (time, records/sec) trace, sorted by time."""
        return [
            (idx * self.bin_seconds, count / self.bin_seconds)
            for idx, count in sorted(self._record_bins.items())
        ]

    def time_to_fraction(self, frac: float) -> float:
        """Exact earliest time by which ``frac`` of all accepted records
        had arrived.  Basis of tail-insensitive throughput: burst
        workloads with heavy-tailed task costs should not have their
        capacity measurement dominated by the single slowest task."""
        if not 0 < frac <= 1:
            raise BenchmarkError("frac must be in (0, 1]")
        target = frac * self.records_accepted
        if target <= 0:
            return 0.0
        acc = 0
        for time, count in self._accept_events:  # already time-ordered
            acc += count
            if acc >= target:
                return time
        return self._accept_events[-1][0]

    def p90_throughput(self) -> float:
        """0.9 × records / time-to-90% — the headline throughput metric."""
        t = self.time_to_fraction(0.9)
        if t <= 0:
            return 0.0
        return 0.9 * self.records_accepted / t

    def peak_throughput(self) -> float:
        """Highest per-bin records/sec observed."""
        if not self._record_bins:
            return 0.0
        return max(self._record_bins.values()) / self.bin_seconds

    def mean_latency(self) -> float:
        """Mean task latency over completed tasks (0 when none)."""
        if not self.task_latencies:
            return 0.0
        return sum(self.task_latencies) / len(self.task_latencies)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in [0, 100] (0 when no tasks completed).

        Nearest-rank over the exact latency list — the legacy
        ``p99_latency`` field.  The SLO fields use
        :meth:`slo_percentile` (linear interpolation, streaming).
        """
        if not 0 <= q <= 100:
            raise BenchmarkError("percentile must be in [0, 100]")
        if not self.task_latencies:
            return 0.0
        data = sorted(self.task_latencies)
        idx = min(len(data) - 1, int(round(q / 100 * (len(data) - 1))))
        return data[idx]

    def slo_percentile(self, q: float) -> float:
        """Streaming latency percentile (numpy-linear semantics)."""
        return self.slo_latency.percentile(q)

    def per_tenant(self) -> dict[str, dict[str, float]]:
        """Per-tenant completion count + latency percentiles, sorted
        by tenant key (empty for untenanted/legacy runs)."""
        return {
            tenant: acc.summary()
            for tenant, acc in sorted(self._tenant_latency.items())
        }

    def per_shard(self) -> dict[str, int]:
        """Completed-task count per output process, sorted by pid.

        Only meaningful under sharded routing: with the legacy broadcast
        layout the first OP to accept claims every completion."""
        return dict(sorted(self._shard_completions.items()))
