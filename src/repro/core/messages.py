"""Wire messages of the OsirisBFT data and control planes.

Message flow (Fig 4): IP → VP_CO (task submission via consensus) →
{EP, WP} (assignments, state updates) → VP_i (record chunks + digests) →
OP (verified chunks).  Control messages cover speculative reassignment,
negligent-leader reports/elections, equivocation recovery, and dynamic
role-switching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.tasks import Assignment, Chunk, Task
from repro.crypto.signatures import Signature
from repro.net.message import Message

__all__ = [
    "StateUpdateMsg",
    "AssignmentMsg",
    "ChunkMsg",
    "ChunkDigestMsg",
    "VerifiedChunkMsg",
    "VerifiedDigestMsg",
    "OutputSizeReport",
    "VerifierLoadReport",
    "SuspectExecutorMsg",
    "TaskCompleteMsg",
    "NegligentLeaderReport",
    "LeaderElectMsg",
    "EquivocationReport",
    "ChunkShareMsg",
    "RoleSwitchMsg",
    "FallbackExecuteMsg",
]


# --------------------------------------------------------------------- [P2]
@dataclass
class StateUpdateMsg(Message):
    """VP_CO member → all WP: a linearized state update.

    Receivers apply after f+1 copies with identical (timestamp, task_id)
    from distinct VP_CO members.
    """

    task: Optional[Task] = None
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes + 64

    def signed_payload(self) -> list:
        return ["state-update", self.task.task_id, self.task.timestamp]


@dataclass
class AssignmentMsg(Message):
    """VP_CO member → executor and VP_i members: signed ⟨t, E, i⟩."""

    assignment: Optional[Assignment] = None
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return self.assignment.task.size_bytes + 96


# --------------------------------------------------------------------- [P3]
@dataclass
class ChunkMsg(Message):
    """Executor → 2f+1 verifiers of VP_i: a record chunk.

    Carries the assignment and its f+1 VP_CO signatures prepended
    (coordination-free task assignment, Sec 5.1.1) so verifiers can act
    even before their own copies of the assignment arrive.
    """

    chunk: Optional[Chunk] = None
    assignment: Optional[Assignment] = None
    assignment_sigs: tuple[Signature, ...] = ()

    def payload_bytes(self) -> int:
        return self.chunk.payload_bytes() + 96 * len(self.assignment_sigs)


@dataclass
class ChunkDigestMsg(Message):
    """Executor → VP_i via non-equivocating multicast: σ(C)."""

    task_id: str = ""
    attempt: int = 0
    index: int = 0
    digest: bytes = b""

    def payload_bytes(self) -> int:
        return 96


# --------------------------------------------------------------------- [P4]
@dataclass
class VerifiedChunkMsg(Message):
    """VP_i leader → OP: verified chunk with its digest."""

    vp_index: int = 0
    task_id: str = ""
    index: int = 0
    final: bool = False
    chunk: Optional[Chunk] = None
    digest: bytes = b""
    total_records: int = 0
    #: tenant metadata for the OP's SLO accounting; "" on legacy
    #: (untenanted) traffic.  Deliberately excluded from payload_bytes —
    #: it rides in the 96-byte header allowance.
    tenant: str = ""
    submitted_at: float = 0.0

    def payload_bytes(self) -> int:
        return self.chunk.payload_bytes() + 96


@dataclass
class VerifiedDigestMsg(Message):
    """VP_i non-leader → OP: digest-only endorsement of a chunk."""

    vp_index: int = 0
    task_id: str = ""
    index: int = 0
    final: bool = False
    digest: bytes = b""
    total_records: int = 0
    tenant: str = ""
    submitted_at: float = 0.0

    def payload_bytes(self) -> int:
        return 96


# ----------------------------------------------------------------- control
@dataclass
class OutputSizeReport(Message):
    """VP_i member → VP_CO: ⟨t.id, numRecords⟩ for workload balancing."""

    task_id: str = ""
    count: int = 0

    def payload_bytes(self) -> int:
        return 72


@dataclass
class VerifierLoadReport(Message):
    """Verifier → VP_CO: recent CPU utilization, the role-switching
    signal (Sec 5.3: "when verifier resource utilization is low...")."""

    vp_index: int = 0
    utilization: float = 0.0
    pending_chunks: int = 0

    def payload_bytes(self) -> int:
        return 64


@dataclass
class SuspectExecutorMsg(Message):
    """VP_i member → VP_CO members: executor suspected faulty for a task.

    Sent on reassignment timeout or on detected output failure; VP_CO
    reassigns on f+1 distinct reports from the task's assigned VP_i.
    """

    task_id: str = ""
    attempt: int = 0
    executor: str = ""
    byzantine: bool = False  # True: proven fault; False: timeout suspicion
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return 128

    def signed_payload(self) -> list:
        return [
            "suspect",
            self.task_id,
            self.attempt,
            self.executor,
            self.byzantine,
        ]


@dataclass
class TaskCompleteMsg(Message):
    """VP_i member → VP_CO members: a task's output fully verified."""

    task_id: str = ""
    attempt: int = 0
    count: int = 0
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return 96

    def signed_payload(self) -> list:
        return ["complete", self.task_id, self.attempt, self.count]


@dataclass
class NegligentLeaderReport(Message):
    """OP → VP_i members: digests arrived but the leader withheld data."""

    vp_index: int = 0
    term: int = 0
    task_id: str = ""
    index: int = 0

    def payload_bytes(self) -> int:
        return 96


@dataclass
class LeaderElectMsg(Message):
    """VP_i member → VP_i members: vote to advance the leadership term."""

    vp_index: int = 0
    new_term: int = 0
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return 80

    def signed_payload(self) -> list:
        return ["elect", self.vp_index, self.new_term]


@dataclass
class EquivocationReport(Message):
    """OP → VP_i members: some but fewer than f+1 digests for a chunk.

    Verifiers holding the matching chunk re-share it within the
    sub-cluster (Sec 5.2.2, "Limited Equivocation").
    """

    vp_index: int = 0
    task_id: str = ""
    index: int = 0
    digest: bytes = b""

    def payload_bytes(self) -> int:
        return 112


@dataclass
class ChunkShareMsg(Message):
    """VP_i member → VP_i members: re-share of a chunk after an
    equivocation report."""

    task_id: str = ""
    attempt: int = 0
    index: int = 0
    chunk: Optional[Chunk] = None
    assignment: Optional[Assignment] = None
    assignment_sigs: tuple[Signature, ...] = ()

    def payload_bytes(self) -> int:
        return self.chunk.payload_bytes() + 96


@dataclass
class RoleSwitchMsg(Message):
    """VP_CO member → VP_i member: switch between verifier/executor modes.

    Receivers act on f+1 copies with the same epoch from distinct VP_CO
    members.
    """

    vp_index: int = 0
    epoch: int = 0
    to_executor: bool = False
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return 96

    def signed_payload(self) -> list:
        return ["role-switch", self.vp_index, self.epoch, self.to_executor]


@dataclass
class FallbackExecuteMsg(Message):
    """VP_CO member → VP_j members: liveness fallback (Lemma 6.4).

    After exhausting executor reassignments, the task is executed by the
    verifier sub-cluster itself: each member runs A locally and sends
    results straight to OP ([P4]).
    """

    task: Optional[Task] = None
    vp_index: int = 0
    sig: Optional[Signature] = None

    def payload_bytes(self) -> int:
        return self.task.size_bytes + 96

    def signed_payload(self) -> list:
        return ["fallback", self.task.task_id, self.vp_index]
