"""Shared worker behaviour: replicated state maintenance.

Every process in WP (executors and verifiers alike) maintains a full
replica of the application state (Sec 2, "the application state is
colocated with WP").  State updates are broadcast by each VP_CO member
after linearization; a replica applies an update only after receiving
f+1 signed copies with identical (timestamp, task id) from *distinct*
coordinator members — a Byzantine minority of VP_CO therefore cannot
poison replicas, and duplicate copies are idempotent.

All WP roles are pure :class:`~repro.runtime.core.ProtocolCore` state
machines: they emit typed effects and never touch a simulator or a
network directly.
"""

from __future__ import annotations

from repro.core.api import VerifiableApplication
from repro.core.config import OsirisConfig
from repro.core.messages import StateUpdateMsg
from repro.core.tasks import Task
from repro.crypto.signatures import KeyRegistry, Signer, verify_cost
from repro.net.topology import Topology
from repro.runtime.core import ProtocolCore
from repro.store.mvstore import MultiVersionStore

__all__ = ["WorkerBase"]


class WorkerBase(ProtocolCore):
    """Base for all WP processes: hosts the multiversioned state replica."""

    def __init__(
        self,
        pid: str,
        topo: Topology,
        registry: KeyRegistry,
        signer: Signer,
        app: VerifiableApplication,
        config: OsirisConfig,
    ) -> None:
        super().__init__(pid)
        self.topo = topo
        self.registry = registry
        self.signer = signer
        self.app = app
        self.config = config
        self.store = MultiVersionStore(app.initial_state())
        self._update_votes: dict[tuple[str, int], set[str]] = {}
        self._applied_updates: set[tuple[str, int]] = set()

    # -------------------------------------------------------- state updates
    def on_StateUpdateMsg(self, msg: StateUpdateMsg) -> None:
        """Count f+1 coordinator copies, then apply in timestamp order."""
        task = msg.task
        if task is None or task.timestamp < 0:
            return
        if msg.sender not in self.topo.coordinator.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(msg.signed_payload(), msg.sig):
            return
        key = (task.task_id, task.timestamp)
        if key in self._applied_updates:
            return
        votes = self._update_votes.setdefault(key, set())
        votes.add(msg.sender)
        if len(votes) >= self.topo.coordinator.quorum:
            self._applied_updates.add(key)
            del self._update_votes[key]
            self.apply_update_locally(task)

    def apply_update_locally(self, task: Task) -> None:
        """Apply a trusted, linearized state update to the local replica.

        The coordinator members call this directly for updates they
        committed themselves (their own consensus output is trusted).
        """
        cost = self.store.submit(task.timestamp, task.update_payload)
        cost += verify_cost(1)
        if cost > 0:
            self.apply_update(cost)
