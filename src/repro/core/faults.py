"""Byzantine fault injection strategies.

The output failure model (Sec 4.2) says every invalid executor output is
a **mismatch**, a **duplication** or an **omission**.  The strategies
here exercise the full space the evaluation and the safety proofs care
about: record corruption and fabrication (mismatch), record/chunk replay
(duplication), truncation and silence (omission), cross-task confusion,
slowness, and plain-channel equivocation.  Verifier- and OP-side faults
cover the generic protocol failures of Sec 5.2.2.

A strategy is attached to a process at deployment time via
:func:`repro.core.cluster.build_osiris_cluster`'s ``faults`` mapping; the
process then behaves Byzantinely *through its normal code paths* — it
still cannot forge other processes' signatures or equivocate through the
non-equivocating primitive, because those powers don't exist in the
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tasks import Record, Task

__all__ = [
    "ExecutorFault",
    "CorruptRecordFault",
    "FabricateRecordFault",
    "DuplicateRecordFault",
    "OmitRecordFault",
    "TruncateOutputFault",
    "ReorderRecordsFault",
    "EarlyFinalFault",
    "SilentFault",
    "SlowFault",
    "DuplicateFinalChunkFault",
    "EquivocateChunksFault",
    "VerifierFault",
    "NegligentLeaderFault",
    "BogusDigestFault",
    "FalseAccusationFault",
    "SilentVerifierFault",
    "OutputFault",
    "SpuriousReportsFault",
    "EXECUTOR_FAULTS",
    "VERIFIER_FAULTS",
    "OUTPUT_FAULTS",
    "FAULT_REGISTRIES",
    "make_fault",
]


# ---------------------------------------------------------------- executors
class ExecutorFault:
    """Strategy interface consulted by the execution engine.

    The default implementation is honest; concrete faults override the
    hooks they need.  ``activate_at`` delays the Byzantine behaviour
    until a simulated time, supporting the Fig 7a "all executors fail at
    t=45s" experiment.
    """

    def __init__(self, activate_at: float = 0.0) -> None:
        self.activate_at = activate_at

    def active(self, now: float) -> bool:
        return now >= self.activate_at

    # hooks -----------------------------------------------------------------
    def transform_records(
        self, task: Task, records: list[Record]
    ) -> list[Record]:
        """Mutate the record sequence before chunking."""
        return records

    def transform_chunks(self, task: Task, chunks: list) -> list:
        """Mutate the chunk sequence after chunking (replay/early-final
        attacks that manipulate chunk framing rather than records)."""
        return chunks

    def suppress_final_chunk(self, task: Task) -> bool:
        """Withhold the final chunk (partial omission → timeout path)."""
        return False

    def silent(self, task: Task) -> bool:
        """Never produce any output for the task."""
        return False

    def extra_delay(self, task: Task) -> float:
        """Additional simulated compute delay (slow executor)."""
        return 0.0

    def equivocate(self, task: Task) -> bool:
        """Send different chunk contents to different verifiers over the
        plain channel (the digest still goes through the non-equivocating
        primitive — that is the whole point of the primitive)."""
        return False


class CorruptRecordFault(ExecutorFault):
    """Mismatch: corrupt the data of the last record of each task.

    This is exactly the Fig 7a injection: "each executor corrupts the
    final record in the next chunk it outputs to cause a mismatch."
    """

    def transform_records(self, task, records):
        if not records:
            return records
        last = records[-1]
        return records[:-1] + [
            Record(key=last.key, data="<corrupted>", size_bytes=last.size_bytes)
        ]


class FabricateRecordFault(ExecutorFault):
    """Mismatch: append a fabricated record that no task produces."""

    def transform_records(self, task, records):
        key = records[-1].key if records else (0,)
        bogus = Record(key=tuple(list(key) + [10**9]), data="<fabricated>")
        return records + [bogus]


class DuplicateRecordFault(ExecutorFault):
    """Duplication: replay the first record at the end of the stream."""

    def transform_records(self, task, records):
        if not records:
            return records
        return records + [records[0]]


class OmitRecordFault(ExecutorFault):
    """Omission: silently drop one record from the middle of the output."""

    def transform_records(self, task, records):
        if len(records) < 2:
            return records
        mid = len(records) // 2
        return records[:mid] + records[mid + 1 :]


class TruncateOutputFault(ExecutorFault):
    """Omission: drop the tail half of the output but still mark final."""

    def transform_records(self, task, records):
        return records[: max(1, len(records) // 2)] if records else records


class ReorderRecordsFault(ExecutorFault):
    """Mismatch/duplication surface: emit records out of program order."""

    def transform_records(self, task, records):
        return list(reversed(records)) if len(records) > 1 else records


class SilentFault(ExecutorFault):
    """Omission: accept assignments, never output (Sec 5.2.2's
    speculative-reassignment trigger)."""

    def silent(self, task):
        return True


class SlowFault(ExecutorFault):
    """Grey failure: correct output, pathological slowness."""

    def __init__(self, delay: float = 5.0, activate_at: float = 0.0) -> None:
        super().__init__(activate_at)
        self.delay = delay

    def extra_delay(self, task):
        return self.delay


class DuplicateFinalChunkFault(ExecutorFault):
    """Duplication across chunk boundaries: replay the final chunk as an
    additional chunk ("for example by sending a correct chunk twice",
    Sec 5.2.1) — caught by the taskFinished/ordering boundary checks."""

    def transform_chunks(self, task, chunks):
        from repro.core.tasks import Chunk

        last = chunks[-1]
        replay = Chunk(last.task_id, last.index + 1, last.records, final=True)
        return chunks + [replay]


class EarlyFinalFault(ExecutorFault):
    """Omission via framing: mark a middle chunk as final and keep
    streaming — caught by the count check or the chunk-after-final rule."""

    def transform_chunks(self, task, chunks):
        from repro.core.tasks import Chunk

        if len(chunks) < 2:
            return chunks
        out = list(chunks)
        mid = len(out) // 2 - 1 if len(out) % 2 == 0 else len(out) // 2
        mid = max(0, mid)
        c = out[mid]
        out[mid] = Chunk(c.task_id, c.index, c.records, final=True)
        return out


class EquivocateChunksFault(ExecutorFault):
    """Equivocation over the plain channel: different verifiers receive
    different chunk contents; σ(C) still goes via the primitive."""

    def equivocate(self, task):
        return True


# ---------------------------------------------------------------- verifiers
@dataclass
class VerifierFault:
    """Verifier-side Byzantine behaviours (all default honest)."""

    activate_at: float = 0.0
    #: as sub-cluster leader, never forward verified chunks to OP
    negligent_leader: bool = False
    #: endorse chunks with a wrong digest
    bogus_digest: bool = False
    #: accuse the executor of every task it sees
    false_accusation: bool = False
    #: drop all verifier duties
    silent: bool = False

    def active(self, now: float) -> bool:
        return now >= self.activate_at


class NegligentLeaderFault(VerifierFault):
    def __init__(self, activate_at: float = 0.0) -> None:
        super().__init__(activate_at=activate_at, negligent_leader=True)


class BogusDigestFault(VerifierFault):
    def __init__(self, activate_at: float = 0.0) -> None:
        super().__init__(activate_at=activate_at, bogus_digest=True)


class FalseAccusationFault(VerifierFault):
    def __init__(self, activate_at: float = 0.0) -> None:
        super().__init__(activate_at=activate_at, false_accusation=True)


class SilentVerifierFault(VerifierFault):
    def __init__(self, activate_at: float = 0.0) -> None:
        super().__init__(activate_at=activate_at, silent=True)


# ----------------------------------------------------------------- outputs
@dataclass
class OutputFault:
    """OP-side Byzantine behaviours."""

    activate_at: float = 0.0
    #: file negligent-leader reports against leaders that did nothing wrong
    spurious_reports: bool = False

    def active(self, now: float) -> bool:
        return now >= self.activate_at


class SpuriousReportsFault(OutputFault):
    def __init__(self, activate_at: float = 0.0) -> None:
        super().__init__(activate_at=activate_at, spurious_reports=True)


# -------------------------------------------------------------- registries
#: Executor fault strategies addressable by name (exp points, campaigns,
#: the fuzz driver and the adversary CLI all resolve kinds here).
EXECUTOR_FAULTS: dict[str, type] = {
    "silent": SilentFault,
    "slow": SlowFault,
    "corrupt-record": CorruptRecordFault,
    "fabricate-record": FabricateRecordFault,
    "duplicate-record": DuplicateRecordFault,
    "omit-record": OmitRecordFault,
    "truncate-output": TruncateOutputFault,
    "reorder-records": ReorderRecordsFault,
    "duplicate-final-chunk": DuplicateFinalChunkFault,
    "early-final": EarlyFinalFault,
    "equivocate-chunks": EquivocateChunksFault,
}

#: Verifier fault strategies addressable by name.
VERIFIER_FAULTS: dict[str, type] = {
    "negligent-leader": NegligentLeaderFault,
    "bogus-digest": BogusDigestFault,
    "false-accusation": FalseAccusationFault,
    "silent-verifier": SilentVerifierFault,
}

#: OP fault strategies addressable by name.
OUTPUT_FAULTS: dict[str, type] = {
    "spurious-reports": SpuriousReportsFault,
}

#: Role name → registry, the canonical role vocabulary.
FAULT_REGISTRIES: dict[str, dict[str, type]] = {
    "executor": EXECUTOR_FAULTS,
    "verifier": VERIFIER_FAULTS,
    "output": OUTPUT_FAULTS,
}


def make_fault(role: str, kind: str, params: dict | None = None):
    """Instantiate the named strategy for ``role`` (one per target pid —
    strategies may be stateful, so instances are never shared)."""
    registry = FAULT_REGISTRIES.get(role)
    if registry is None:
        raise ValueError(
            f"unknown fault role {role!r}; expected one of "
            f"{sorted(FAULT_REGISTRIES)}"
        )
    cls = registry.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown {role} fault {kind!r}; registered: {sorted(registry)}"
        )
    return cls(**dict(params or {}))
