"""The output failure model (Sec 4.2) as executable artifacts.

The paper groups every way a Byzantine worker can corrupt application
output into three classes — **mismatch**, **duplication**, **omission** —
and proves the taxonomy complete (Lemma 4.1: every invalid output
corresponds to at least one class).  :func:`classify_output` implements
the classification for an observed record sequence against the expected
``A(s, t)``; the property-based tests in
``tests/core/test_failure_model.py`` machine-check the completeness and
soundness statements:

* *completeness* — any observed sequence ≠ expected has ≥1 class;
* *soundness* — the expected sequence itself has none (Lemma 4.2's
  output-side half);
* *detectability* — the verification operators (validity, order, count)
  flag a sequence **iff** the classifier does.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

from repro.core.tasks import Record

__all__ = ["OutputFailure", "classify_output", "operators_accept"]


class OutputFailure(enum.Flag):
    """The three output-failure classes of Sec 4.2."""

    NONE = 0
    MISMATCH = enum.auto()
    DUPLICATION = enum.auto()
    OMISSION = enum.auto()


def classify_output(
    observed: Sequence[Record],
    expected: Sequence[Record],
) -> OutputFailure:
    """Classify how ``observed`` deviates from the expected ``A(s, t)``.

    ``expected`` must be the totally-ordered record sequence of a correct
    execution (distinct keys, sorted).  Classes may combine: an output
    can simultaneously omit one record and duplicate another.
    """
    expected_keys = [r.key for r in expected]
    expected_set = set(expected_keys)
    expected_by_key = {r.key: r for r in expected}

    failures = OutputFailure.NONE
    seen: dict = {}
    for record in observed:
        match = expected_by_key.get(record.key)
        if match is None or match.data != record.data:
            # r ∉ A(s, t): wrong task output, fabricated or corrupted
            failures |= OutputFailure.MISMATCH
        else:
            seen[record.key] = seen.get(record.key, 0) + 1
    if any(count > 1 for count in seen.values()):
        failures |= OutputFailure.DUPLICATION
    if any(key not in seen for key in expected_set):
        failures |= OutputFailure.OMISSION
    return failures


def operators_accept(
    observed: Sequence[Record],
    expected: Sequence[Record],
    is_valid: Callable[[Record], bool],
) -> bool:
    """Evaluate the three verification operators the way a verifier does
    (Lemma 6.2's conditions): per-record validity, strict happens-before
    ordering, and the outputSize count.

    Returns True iff all three pass — which, per the safety proof, holds
    iff ``observed == expected``.
    """
    if len(observed) != len(expected):  # outputSize
        return False
    for i, record in enumerate(observed):
        if not is_valid(record):  # isValid
            return False
        if i + 1 < len(observed) and not (
            record.key < observed[i + 1].key
        ):  # happensBefore
            return False
    return True
