"""Streaming order statistics for SLO reporting.

:class:`StreamingPercentiles` feeds MetricsHub's p50/p99/p999 latency
fields.  Small samples (the overwhelmingly common bench case) are kept
exactly and quantiles match ``numpy.percentile``'s default *linear*
interpolation bit-for-bit; past ``exact_limit`` observations the
accumulator folds into a DDSketch-style log-bucket histogram whose
quantiles carry a bounded *relative* error (``rel_error``), keeping
memory O(log(max/min)) for million-task open-loop runs.
"""

from __future__ import annotations

import math

__all__ = ["StreamingPercentiles"]


class StreamingPercentiles:
    """Mergeable-enough streaming quantile accumulator.

    * below ``exact_limit`` observations: exact, numpy-``linear``
      interpolation semantics (including the empty → 0.0 and
      one-sample → that sample edge cases);
    * above: log buckets of ratio ``gamma = (1+e)/(1-e)`` so any
      reported quantile ``v̂`` satisfies ``|v̂ - v| <= e·v`` for the true
      positive quantile ``v`` (zeros and non-positives are counted in a
      dedicated bucket and reported as 0.0).
    """

    def __init__(self, exact_limit: int = 4096, rel_error: float = 0.01):
        if exact_limit < 1:
            raise ValueError("exact_limit must be >= 1")
        if not 0.0 < rel_error < 1.0:
            raise ValueError("rel_error must be in (0, 1)")
        self.exact_limit = exact_limit
        self.rel_error = rel_error
        self._gamma = (1.0 + rel_error) / (1.0 - rel_error)
        self._log_gamma = math.log(self._gamma)
        self._samples: list[float] = []
        self._dirty = False  # samples need re-sorting before a query
        self._buckets: dict[int, int] | None = None  # None while exact
        self._zeros = 0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    # ---------------------------------------------------------------- feed
    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._buckets is None:
            self._samples.append(value)
            self._dirty = True
            if len(self._samples) >= self.exact_limit:
                self._fold()
        else:
            self._bucket_add(value)

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _bucket_add(self, value: float) -> None:
        if value <= 0.0:
            self._zeros += 1
            return
        key = self._key(value)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def _fold(self) -> None:
        self._buckets = {}
        for v in self._samples:
            self._bucket_add(v)
        self._samples = []
        self._dirty = False

    # --------------------------------------------------------------- query
    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]); 0.0 on an empty stream."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if self._buckets is None:
            if self._dirty:
                self._samples.sort()
                self._dirty = False
            s = self._samples
            pos = q / 100.0 * (len(s) - 1)
            lo = math.floor(pos)
            frac = pos - lo
            if frac == 0.0:
                return s[lo]
            return s[lo] + frac * (s[lo + 1] - s[lo])
        # sketch mode: nearest-rank walk over the log buckets
        rank = q / 100.0 * (self.count - 1)
        if rank < self._zeros:
            return 0.0
        seen = self._zeros
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if rank < seen:
                # bucket (gamma^(k-1), gamma^k]: midpoint bounds the
                # relative error by rel_error
                mid = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - rank always < total seen

    @property
    def exact(self) -> bool:
        """True while every observation is retained exactly."""
        return self._buckets is None

    def summary(self) -> dict[str, float]:
        """The standard SLO triple plus extremes, JSON-ready."""
        if self.count == 0:
            return {"count": 0, "p50": 0.0, "p99": 0.0, "p999": 0.0}
        return {
            "count": self.count,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }
