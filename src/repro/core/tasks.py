"""Tasks, records, chunks and assignments — the data plane vocabulary.

Sec 4.1: applications operate on states S, records R and tasks T with a
pair of functions ⟨U, A⟩.  A :class:`Task` carries an opcode saying
whether it triggers U (state update), A (computation), or both.  VP_CO's
consensus assigns each task a monotonically increasing logical timestamp;
computation-only tasks inherit the timestamp of the latest state update
(Sec 5.1.1), pinning them to a store snapshot.

Records are ordered by an application-defined ``key`` (the basis of the
default ``happens_before``); executors stream them to verifiers in
*chunks* — disjoint subsequences of the task's output (Sec 5, "Task
Batches & Record Chunks").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError

__all__ = ["Opcode", "Task", "Record", "Assignment", "Chunk", "chunk_records"]


class Opcode(enum.Enum):
    """What a task asks for: U, A, or both (Sec 4.1's four use cases)."""

    UPDATE = "update"
    COMPUTE = "compute"
    BOTH = "both"

    @property
    def has_update(self) -> bool:
        return self in (Opcode.UPDATE, Opcode.BOTH)

    @property
    def has_compute(self) -> bool:
        return self in (Opcode.COMPUTE, Opcode.BOTH)


@dataclass(frozen=True)
class Task:
    """An input task.

    ``timestamp`` is -1 until VP_CO linearizes the task; the coordinator
    then re-issues the task with its logical timestamp filled in.
    """

    task_id: str
    opcode: Opcode
    update_payload: Any = None
    compute_payload: Any = None
    timestamp: int = -1
    submitted_at: float = 0.0
    size_bytes: int = 64
    #: Owning tenant in multi-tenant deployments; "" means untenanted
    #: (the single-pipeline legacy shape).  Deliberately excluded from
    #: ``canonical()`` so tenancy metadata never perturbs digests or
    #: coordinator signatures.
    tenant: str = ""

    def canonical(self) -> list:
        return [self.task_id, self.opcode.value, self.timestamp]

    def with_timestamp(self, ts: int) -> "Task":
        """Copy of the task pinned at logical timestamp ``ts``."""
        return Task(
            task_id=self.task_id,
            opcode=self.opcode,
            update_payload=self.update_payload,
            compute_payload=self.compute_payload,
            timestamp=ts,
            submitted_at=self.submitted_at,
            size_bytes=self.size_bytes,
            tenant=self.tenant,
        )


@dataclass(frozen=True)
class Record:
    """One output record.

    ``key`` must be a tuple of orderable scalars; the executing worker's
    process-local program order (Task-Ordered property) is the
    lexicographic order of keys, and duplicate keys within one task's
    output are illegal (A(s, t) is totally ordered, Sec 4.3).
    """

    key: tuple
    data: Any = None
    size_bytes: int = 64

    def canonical(self) -> list:
        return [list(self.key), self.data, self.size_bytes]


@dataclass(frozen=True)
class Assignment:
    """⟨t, E, i⟩ — task ``t`` executed by ``executor``, verified by VP_i.

    ``attempt`` distinguishes speculative reassignments of the same task;
    executors and verifiers require f+1 coordinator signatures over the
    exact tuple before acting on it (coordination-free task assignment,
    Sec 5.1.1).
    """

    task: Task
    executor: str
    vp_index: int
    attempt: int = 0

    @property
    def key(self) -> tuple[str, int]:
        return (self.task.task_id, self.attempt)

    def signed_payload(self) -> list:
        return [
            "assign",
            self.task.task_id,
            self.task.timestamp,
            self.executor,
            self.vp_index,
            self.attempt,
        ]


@dataclass(frozen=True)
class Chunk:
    """A disjoint subsequence of one task's output records."""

    task_id: str
    index: int
    records: tuple[Record, ...]
    final: bool

    def payload_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def canonical(self) -> list:
        return [
            self.task_id,
            self.index,
            [r.canonical() for r in self.records],
            self.final,
        ]


def chunk_records(
    task_id: str, records: list[Record], max_bytes: int
) -> list[Chunk]:
    """Split a record sequence into chunks of at most ``max_bytes`` payload.

    Always returns at least one chunk (a final, possibly empty one) so
    that the "final chunk" completion signal exists even for empty
    outputs.
    """
    if max_bytes <= 0:
        raise ProtocolError(f"max_bytes must be positive, got {max_bytes}")
    chunks: list[Chunk] = []
    current: list[Record] = []
    size = 0
    for rec in records:
        if current and size + rec.size_bytes > max_bytes:
            chunks.append(
                Chunk(task_id, len(chunks), tuple(current), final=False)
            )
            current, size = [], 0
        current.append(rec)
        size += rec.size_bytes
    chunks.append(Chunk(task_id, len(chunks), tuple(current), final=True))
    return chunks
