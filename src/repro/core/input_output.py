"""Input and output processes (the pipeline's endpoints).

IP submits task batches to VP_CO through the consensus client ([P1]);
OP accepts a record chunk only after f+1 matching digests from one
verifier sub-cluster ([P4]) and runs the negligent-leader /
equivocation-report machinery of Sec 5.2.2.  The paper makes *no*
assumption about failures in IP or OP — Byzantine variants are expressed
through :class:`~repro.core.faults.OutputFault` and by submitting
invalid tasks.

Both endpoints are pure :class:`~repro.runtime.core.ProtocolCore` state
machines; scheduling and transmission happen through typed effects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.consensus.fast_robust import ConsensusClient
from repro.core.config import OsirisConfig
from repro.core.faults import OutputFault
from repro.core.messages import (
    EquivocationReport,
    NegligentLeaderReport,
    VerifiedChunkMsg,
    VerifiedDigestMsg,
)
from repro.core.tasks import Chunk, Task
from repro.crypto.digest import digest
from repro.obs.events import (
    CATEGORY_CHUNK,
    CATEGORY_TASK,
    ChunkAccepted,
    RecordsAccepted,
    TaskAdmitted,
    TaskCompleted,
    TaskDeferred,
    TaskOutcome,
    TaskRejected,
    TaskSubmitted,
)
from repro.net.topology import Topology
from repro.runtime.core import ProtocolCore

__all__ = ["InputProcess", "OutputProcess"]


class InputProcess(ProtocolCore):
    """Streams a task workload into the coordinator.

    ``workload`` is a lazy iterator of ``(submit_time, Task)`` pairs in
    non-decreasing time order; tasks are scheduled one ahead so huge
    workloads never materialize in memory.

    When ``config`` enables admission control (``admission_queue`` /
    ``admission_rate``), arrivals pass through a bounded ingress queue
    drained at the configured rate, with explicit shed accounting:
    ``tasks_admitted`` were forwarded, ``tasks_deferred`` additionally
    had to wait behind the drain, ``tasks_rejected`` were dropped at a
    full queue.  With both knobs unset (the default) every arrival is
    forwarded immediately on the exact legacy path.
    """

    def __init__(
        self,
        pid: str,
        topo: Topology,
        workload: Iterator[tuple[float, Task]],
        config: Optional[OsirisConfig] = None,
    ) -> None:
        super().__init__(pid)
        self.topo = topo
        self.config = config
        self._workload = iter(workload)
        self.client = ConsensusClient(self, topo.coordinator)
        self.tasks_submitted = 0
        self.tasks_admitted = 0
        self.tasks_deferred = 0
        self.tasks_rejected = 0
        self._queue: deque[Task] = deque()
        self._draining = False

    @property
    def _admission(self) -> bool:
        c = self.config
        return c is not None and (
            c.admission_queue is not None or c.admission_rate is not None
        )

    def start(self) -> None:
        """Begin streaming tasks (call once after deployment wiring)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        try:
            at, task = next(self._workload)
        except StopIteration:
            return
        delay = max(0.0, at - self.now)
        if self._admission:
            self.schedule(delay, self._arrive, task)
        else:
            self.schedule(delay, self._submit, task)

    def _forward(self, task: Task) -> None:
        stamped = replace(task, submitted_at=self.now)
        if self.wants(CATEGORY_TASK):
            self.emit(
                TaskSubmitted(
                    time=self.now, pid=self.pid, task_id=task.task_id
                )
            )
        self.client.submit(stamped, size=task.size_bytes)
        self.tasks_submitted += 1

    def _submit(self, task: Task) -> None:
        if not self.crashed:
            self._forward(task)
        self._schedule_next()

    def inject(self, task: Task) -> None:
        """Externally-submitted arrival (the live gateway path).

        Same treatment as a workload arrival — through admission control
        when configured, straight to consensus otherwise — but without
        touching the workload iterator, so serving deployments need no
        pre-planned stream at all.
        """
        if self.crashed:
            return
        if self._admission:
            self._admit(task)
        else:
            self._forward(task)

    # ----------------------------------------------------------- admission
    def _arrive(self, task: Task) -> None:
        if not self.crashed:
            self._admit(task)
        self._schedule_next()

    def _admit(self, task: Task) -> None:
        bound = self.config.admission_queue
        if bound is not None and len(self._queue) >= bound:
            self.tasks_rejected += 1
            if self.wants(CATEGORY_TASK):
                self.emit(
                    TaskRejected(
                        time=self.now,
                        pid=self.pid,
                        task_id=task.task_id,
                        tenant=task.tenant,
                    )
                )
        else:
            if self._draining or self._queue:
                self.tasks_deferred += 1
                if self.wants(CATEGORY_TASK):
                    self.emit(
                        TaskDeferred(
                            time=self.now,
                            pid=self.pid,
                            task_id=task.task_id,
                            tenant=task.tenant,
                            queue_depth=len(self._queue) + 1,
                        )
                    )
            self._queue.append(task)
            if not self._draining:
                self._draining = True
                self._drain()

    def _drain(self) -> None:
        if self.crashed or not self._queue:
            self._draining = False
            return
        task = self._queue.popleft()
        self._forward(task)
        self.tasks_admitted += 1
        if self.wants(CATEGORY_TASK):
            self.emit(
                TaskAdmitted(
                    time=self.now,
                    pid=self.pid,
                    task_id=task.task_id,
                    tenant=task.tenant,
                )
            )
        rate = self.config.admission_rate
        if rate is not None:
            # rate-limited drain: the pending tick spaces the next
            # submit even if the queue is briefly empty when it fires
            self.schedule(1.0 / rate, self._drain)
        elif self._queue:
            self.schedule(0.0, self._drain)
        else:
            self._draining = False


@dataclass
class _ChunkSlot:
    endorsements: dict[bytes, set[str]] = field(default_factory=dict)
    data: dict[bytes, Chunk] = field(default_factory=dict)
    accepted: bool = False
    reports: int = 0


@dataclass
class _OutTask:
    slots: dict[int, _ChunkSlot] = field(default_factory=dict)
    final_index: Optional[int] = None
    accepted: set[int] = field(default_factory=set)
    vp_index: int = -1
    completed: bool = False
    neg_terms: int = 0
    tenant: str = ""
    submitted_at: float = 0.0


class OutputProcess(ProtocolCore):
    """Receives verified chunks; the downstream consumer of Fig 3."""

    def __init__(
        self,
        pid: str,
        topo: Topology,
        config: OsirisConfig,
        fault: Optional[OutputFault] = None,
    ) -> None:
        super().__init__(pid)
        self.topo = topo
        self.config = config
        self.fault = fault
        self._tasks: dict[str, _OutTask] = {}
        self.chunks_accepted = 0
        self.records_accepted = 0

    # ------------------------------------------------------------- receive
    def _slot(self, msg) -> Optional[tuple[_OutTask, _ChunkSlot]]:
        cluster = self.topo.cluster_of(msg.sender)
        if cluster is None or cluster.index != msg.vp_index:
            return None
        ot = self._tasks.setdefault(msg.task_id, _OutTask())
        if ot.completed:
            return None
        if ot.vp_index < 0:
            ot.vp_index = msg.vp_index
        elif ot.vp_index != msg.vp_index:
            return None  # a task's output comes from one sub-cluster
        if msg.tenant and not ot.tenant:
            ot.tenant = msg.tenant
            ot.submitted_at = msg.submitted_at
        if msg.final:
            ot.final_index = msg.index
        return ot, ot.slots.setdefault(msg.index, _ChunkSlot())

    def on_VerifiedChunkMsg(self, msg: VerifiedChunkMsg) -> None:
        got = self._slot(msg)
        if got is None or msg.chunk is None:
            return
        ot, slot = got
        actual = digest(msg.chunk)
        slot.data[actual] = msg.chunk
        slot.endorsements.setdefault(msg.digest, set()).add(msg.sender)
        self._try_accept(msg.task_id, ot, msg.index, slot)

    def on_VerifiedDigestMsg(self, msg: VerifiedDigestMsg) -> None:
        got = self._slot(msg)
        if got is None:
            return
        ot, slot = got
        slot.endorsements.setdefault(msg.digest, set()).add(msg.sender)
        self._try_accept(msg.task_id, ot, msg.index, slot)

    # -------------------------------------------------------------- accept
    def _try_accept(
        self, task_id: str, ot: _OutTask, index: int, slot: _ChunkSlot
    ) -> None:
        if slot.accepted:
            return
        quorum = self.topo.cluster(ot.vp_index).quorum
        for sigma, endorsers in slot.endorsements.items():
            if len(endorsers) >= quorum and sigma in slot.data:
                chunk = slot.data[sigma]
                slot.accepted = True
                ot.accepted.add(index)
                self.cancel_timer(f"op-wait-{task_id}-{index}")
                self.chunks_accepted += 1
                self.records_accepted += len(chunk.records)
                if self.wants(CATEGORY_TASK):
                    self.emit(
                        RecordsAccepted(
                            time=self.now,
                            pid=self.pid,
                            task_id=task_id,
                            count=len(chunk.records),
                        )
                    )
                if self.wants(CATEGORY_CHUNK):
                    self.emit(
                        ChunkAccepted(
                            time=self.now,
                            pid=self.pid,
                            task_id=task_id,
                            index=index,
                            records=len(chunk.records),
                        )
                    )
                self._check_complete(task_id, ot)
                return
        # not acceptable yet: something is late or someone is lying
        self._arm_wait_timer(task_id, index)

    def _check_complete(self, task_id: str, ot: _OutTask) -> None:
        if ot.completed or ot.final_index is None:
            return
        if all(i in ot.accepted for i in range(ot.final_index + 1)):
            ot.completed = True
            for index in list(ot.slots):
                self.cancel_timer(f"op-wait-{task_id}-{index}")
            if self.wants(CATEGORY_TASK):
                self.emit(
                    TaskCompleted(
                        time=self.now, pid=self.pid, task_id=task_id
                    )
                )
                if ot.tenant:
                    # tenant-tagged runs additionally get the SLO record;
                    # legacy traces never see this event (byte-identity)
                    self.emit(
                        TaskOutcome(
                            time=self.now,
                            pid=self.pid,
                            task_id=task_id,
                            tenant=ot.tenant,
                            submitted_at=ot.submitted_at,
                        )
                    )

    # ----------------------------------------------------------- timeouts
    def _arm_wait_timer(self, task_id: str, index: int) -> None:
        name = f"op-wait-{task_id}-{index}"
        if self.timer_armed(name):
            return
        ot = self._tasks[task_id]
        slot = ot.slots[index]
        timeout = self.config.op_timeout * (2 ** min(slot.reports, 8))
        self.set_timer(name, timeout, self._on_wait_timeout, task_id, index)

    def _on_wait_timeout(self, task_id: str, index: int) -> None:
        ot = self._tasks.get(task_id)
        if ot is None or ot.completed:
            return
        slot = ot.slots.get(index)
        if slot is None or slot.accepted:
            return
        quorum = self.topo.cluster(ot.vp_index).quorum
        members = self.topo.cluster(ot.vp_index).members
        best = max(slot.endorsements.items(), key=lambda kv: len(kv[1]))
        sigma, endorsers = best
        slot.reports += 1
        if len(endorsers) >= quorum:
            # enough digests, no data: the leader is withholding C
            report = NegligentLeaderReport(
                vp_index=ot.vp_index,
                term=ot.neg_terms,
                task_id=task_id,
                index=index,
            )
            ot.neg_terms += 1
            self.multicast(members, report)
        else:
            # at least one but fewer than f+1 digests: equivocation path
            report = EquivocationReport(
                vp_index=ot.vp_index,
                task_id=task_id,
                index=index,
                digest=sigma,
            )
            self.multicast(members, report)
        self._arm_wait_timer(task_id, index)  # exponential backoff re-arm

    # ------------------------------------------------------- Byzantine OP
    def start_spurious_reports(self, vp_index: int, period: float = 0.2) -> None:
        """Fault injection: flood a sub-cluster with fake negligence
        reports (verifiers must eventually ignore this OP)."""
        if self.fault is None or not self.fault.spurious_reports:
            return
        term = [0]

        def fire() -> None:
            if self.crashed:
                return
            report = NegligentLeaderReport(
                vp_index=vp_index,
                term=term[0],
                task_id="bogus-task",
                index=0,
            )
            term[0] += 1
            self.multicast(self.topo.cluster(vp_index).members, report)
            self.set_timer("spurious", period, fire)

        self.set_timer("spurious", period, fire)
