"""Verifier processes: Algorithm 4 plus the generic failure protocols.

A verifier in VP_i independently checks every record chunk an executor
streams to it — no coordination with fellow verifiers during graceful
execution (Sec 5, "zero coordination among the verifiers during graceful
executions").  It detects:

* **mismatch** — per-record ``is_valid`` + assignment authentication;
* **duplication** — ``happens_before`` over adjacent records and across
  chunk boundaries;
* **omission** — ``output_size`` count versus records seen, checked at
  the final chunk (and speculative-reassignment timeouts for executors
  that never finish).

It also implements the generic protocol machinery of Sec 5.2.2:
negligent-leader elections, equivocation recovery via chunk re-sharing,
the role-switching executor mode (Sec 5.3), and the verifier-side
liveness fallback of Lemma 6.4.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.executor import ExecutionEngine
from repro.core.faults import VerifierFault
from repro.core.messages import (
    AssignmentMsg,
    ChunkDigestMsg,
    ChunkMsg,
    ChunkShareMsg,
    EquivocationReport,
    FallbackExecuteMsg,
    LeaderElectMsg,
    NegligentLeaderReport,
    OutputSizeReport,
    RoleSwitchMsg,
    SuspectExecutorMsg,
    TaskCompleteMsg,
    VerifiedChunkMsg,
    VerifiedDigestMsg,
)
from repro.core.tasks import Assignment, Chunk, Record, chunk_records
from repro.core.worker import WorkerBase
from repro.crypto.digest import digest
from repro.crypto.signatures import Signature, sign_cost, verify_cost
from repro.net.topology import SubCluster
from repro.obs.events import (
    CATEGORY_CHUNK,
    ChunkVerified,
    EquivocationReported,
    FaultDetected,
    LeaderElection,
)

__all__ = ["Verifier"]


@dataclass
class _VerState:
    """Per-(task, attempt) verification state (Algorithm 4's tables)."""

    assignment: Optional[Assignment] = None
    sigs: dict[str, Signature] = field(default_factory=dict)
    activated: bool = False
    count: Optional[int] = None           # numRecords[t] from outputSize
    count_started: bool = False
    expected_digests: dict[int, tuple[str, bytes]] = field(default_factory=dict)
    raw_chunks: dict[int, ChunkMsg] = field(default_factory=dict)
    next_index: int = 0
    processing: bool = False
    seen_records: int = 0                 # seenRecords[t]
    last_record: Optional[Record] = None
    final_seen: bool = False
    verified: list[tuple[Chunk, bytes]] = field(default_factory=list)
    finished: bool = False
    failed: bool = False


class Verifier(WorkerBase):
    """A member of a verifier sub-cluster VP_i."""

    def __init__(
        self,
        *args,
        cluster: SubCluster,
        fault: Optional[VerifierFault] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.cluster = cluster
        self.fault = fault
        self.engine = ExecutionEngine(self)  # role-switch executor mode
        self.term = 0
        self.executor_mode = False
        self.role_epoch = 0
        self._tasks: dict[tuple[str, int], _VerState] = {}
        self._completed_tasks: set[str] = set()
        #: task_id -> (tenant, submitted_at) for OP routing/SLO tagging;
        #: grows with _completed_tasks (same unbounded-set precedent)
        self._task_meta: dict[str, tuple[str, float]] = {}
        self._retained: OrderedDict[str, list[tuple[Chunk, bytes]]] = OrderedDict()
        self._elect_votes: dict[int, set[str]] = {}
        self._op_reported_leaders: dict[str, set[str]] = {}
        self._byzantine_ops: set[str] = set()
        self._role_votes: dict[tuple[int, bool], set[str]] = {}
        self._fallback_votes: dict[str, dict[str, Signature]] = {}
        self._fallback_done: set[str] = set()
        self._suspect_fires: dict[tuple[str, int], int] = {}
        self.chunks_verified = 0
        self.failures_detected = 0
        self._last_busy_snapshot = 0.0

    def on_bind(self) -> None:
        # timers arm at bind time, never in __init__: an unbound core has
        # no clock to arm against
        if self.config.role_switching:
            self.set_timer(
                "load-report",
                self.config.role_switch_interval,
                self._send_load_report,
            )

    # ------------------------------------------------------------- fault gate
    def _faulty(self, attr: str) -> bool:
        return (
            self.fault is not None
            and self.fault.active(self.now)
            and getattr(self.fault, attr)
        )

    @property
    def is_leader(self) -> bool:
        """Whether this member currently leads its sub-cluster."""
        return self.cluster.leader_at(self.term) == self.pid

    # ---------------------------------------------------------- assignments
    def on_AssignmentMsg(self, msg: AssignmentMsg) -> None:
        """Algorithm 3 line 17: verifier copy of ⟨t, E, i⟩."""
        a = msg.assignment
        if a is None or not a.task.opcode.has_compute:
            return
        if a.executor == self.pid:
            # this process was assigned as an *executor* (role switching
            # or a verifier-turned-executor deployment)
            self.engine.handle_assignment(msg)
            return
        if self._faulty("silent"):
            return
        if a.vp_index != self.cluster.index:
            return
        if msg.sender not in self.topo.coordinator.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(a.signed_payload(), msg.sig):
            return
        if a.task.task_id in self._completed_tasks:
            return
        st = self._tasks.setdefault(a.key, _VerState())
        if st.assignment is None:
            st.assignment = a
        elif st.assignment.signed_payload() != a.signed_payload():
            return
        st.sigs[msg.sig.signer] = msg.sig
        if len(st.sigs) >= self.topo.coordinator.quorum and not st.activated:
            self._activate(a.key)

    def _activate(self, key: tuple[str, int]) -> None:
        """f+1 signed assignments held: start outputSize and the watchdog."""
        st = self._tasks[key]
        st.activated = True
        if self._faulty("false_accusation"):
            self._accuse(key, byzantine=True)
        if not st.count_started:
            st.count_started = True
            ts = st.assignment.task.timestamp
            self.store.when_ready(ts, lambda: self._run_count(key))
        self._arm_suspect_timer(key)
        self._pump(key)

    def _run_count(self, key: tuple[str, int]) -> None:
        """Algorithm 3 line 19: compute outputSize(t) asynchronously,
        overlapping the executor's work."""
        st = self._tasks.get(key)
        if st is None or st.failed or st.assignment is None:
            return
        a = st.assignment
        view = self.store.view(a.task.timestamp)
        res = self.app.output_size(view, a.task)
        self.run_job(res.cost, self._count_done, key, res.count)

    def _count_done(self, key: tuple[str, int], count: int) -> None:
        st = self._tasks.get(key)
        if st is None:
            return
        st.count = count
        # report back for workload balancing (Algorithm 3 line 21)
        report = OutputSizeReport(task_id=key[0], count=count)
        self.multicast(self.topo.coordinator.members, report)
        self._maybe_finalize(key)

    # -------------------------------------------------------------- chunks
    def on_ChunkMsg(self, msg: ChunkMsg) -> None:
        """Algorithm 4 line 33: record chunk from an executor."""
        if self._faulty("silent"):
            return
        a = msg.assignment
        chunk = msg.chunk
        if a is None or chunk is None or not a.task.opcode.has_compute:
            return
        # validAssignment(<t,e,vpi>, sender): right executor, right cluster
        if msg.sender != a.executor or a.vp_index != self.cluster.index:
            return
        if chunk.task_id != a.task.task_id:
            return
        if a.task.task_id in self._completed_tasks:
            return
        st = self._tasks.setdefault(a.key, _VerState())
        if st.failed or st.finished:
            return
        if not st.activated:
            # activation ALWAYS needs f+1 coordinator signatures — here
            # via the copies prepended to the chunk (a single Byzantine
            # VP_CO member must never be able to conjure an assignment)
            if self.registry.verify_quorum(
                a.signed_payload(),
                list(msg.assignment_sigs),
                set(self.topo.coordinator.members),
                self.topo.coordinator.quorum,
            ):
                if st.assignment is None:
                    st.assignment = a
                elif st.assignment.signed_payload() != a.signed_payload():
                    return
                self._activate(a.key)
        st.raw_chunks.setdefault(chunk.index, msg)
        if st.activated:
            self._pump(a.key)

    def on_ChunkDigestMsg(self, msg: ChunkDigestMsg) -> None:
        """σ(C) via the non-equivocating primitive."""
        if self._faulty("silent"):
            return
        if not getattr(msg, "_neq", False):
            return  # digests must use the primitive (Sec 5.2.2)
        if msg.task_id in self._completed_tasks:
            return
        key = (msg.task_id, msg.attempt)
        st = self._tasks.setdefault(key, _VerState())
        st.expected_digests.setdefault(msg.index, (msg.sender, msg.digest))
        self._pump(key)

    def _pump(self, key: tuple[str, int]) -> None:
        """Process buffered chunks in index order, one verify job at a time."""
        st = self._tasks.get(key)
        if (
            st is None
            or not st.activated
            or st.processing
            or st.failed
            or st.finished
        ):
            return
        idx = st.next_index
        if idx not in st.raw_chunks or idx not in st.expected_digests:
            return
        a = st.assignment
        if not self.store.ready(a.task.timestamp):
            self.store.when_ready(a.task.timestamp, lambda: self._pump(key))
            return
        msg = st.raw_chunks.pop(idx)
        sender, sigma = st.expected_digests[idx]
        if sender != a.executor:
            return  # digest not from the assigned executor: ignore noise
        if digest(msg.chunk) != sigma:
            # chunk content disagrees with the non-equivocable digest:
            # the executor equivocated or corrupted the stream
            self._fail(key, "digest-mismatch")
            return
        st.processing = True
        cost = verify_cost(1) + sum(
            self.app.verify_record_cost(r) for r in msg.chunk.records
        )
        self.run_job(cost, self._judge, key, msg.chunk, sigma)

    def _judge(self, key: tuple[str, int], chunk: Chunk, sigma: bytes) -> None:
        """Algorithm 4 ``verify()``: ordering, validity, boundary checks."""
        st = self._tasks.get(key)
        if st is None or st.failed or st.finished:
            return
        st.processing = False
        a = st.assignment
        if st.final_seen:
            # prevChunk.taskFinished() — output continued past the final
            # chunk (replayed chunk): duplication
            self._fail(key, "chunk-after-final")
            return
        view = self.store.view(a.task.timestamp)
        records = chunk.records
        if records:
            if st.last_record is not None and not self.app.happens_before(
                st.last_record, records[0]
            ):
                self._fail(key, "inter-chunk-order")
                return
            for i, rec in enumerate(records):
                if not self.app.is_valid(view, rec, a.task):
                    self._fail(key, "invalid-record")
                    return
                if i + 1 < len(records) and not self.app.happens_before(
                    rec, records[i + 1]
                ):
                    self._fail(key, "intra-chunk-order")
                    return
            st.last_record = records[-1]
        st.seen_records += len(records)
        st.verified.append((chunk, sigma))
        st.next_index += 1
        self.chunks_verified += 1
        if self.wants(CATEGORY_CHUNK):
            self.emit(
                ChunkVerified(
                    time=self.now,
                    pid=self.pid,
                    task_id=chunk.task_id,
                    index=chunk.index,
                    records=len(records),
                )
            )
        if chunk.final:
            st.final_seen = True
            self.cancel_timer(self._suspect_timer_name(key))
            self._maybe_finalize(key)
            # keep draining the buffer: any chunk past the final one is a
            # replay and must be caught by the taskFinished check above
            self._pump(key)
        else:
            self._arm_suspect_timer(key)  # resetReassignmentTimeout (l.47)
            self._pump(key)

    def _maybe_finalize(self, key: tuple[str, int]) -> None:
        """Final chunk seen and outputSize known: the omission check."""
        st = self._tasks.get(key)
        if (
            st is None
            or not st.final_seen
            or st.count is None
            or st.failed
            or st.finished
        ):
            return
        if st.seen_records != st.count:
            self._fail(key, "count-mismatch")
            return
        self._complete(key)

    # ----------------------------------------------------- verdict handling
    def _fail(self, key: tuple[str, int], reason: str) -> None:
        """markByzantineExecutor + allChunks[t].clear() (Algorithm 4)."""
        st = self._tasks.get(key)
        if st is None or st.failed:
            return
        st.failed = True
        st.verified.clear()
        st.raw_chunks.clear()
        self.failures_detected += 1
        self.cancel_timer(self._suspect_timer_name(key))
        executor = st.assignment.executor if st.assignment else "?"
        self.emit(
            FaultDetected(
                time=self.now, pid=self.pid, reason=reason, culprit=executor
            )
        )
        self._accuse(key, byzantine=True)

    def _accuse(self, key: tuple[str, int], byzantine: bool) -> None:
        st = self._tasks.get(key)
        executor = st.assignment.executor if st and st.assignment else "?"
        payload_msg = SuspectExecutorMsg(
            task_id=key[0],
            attempt=key[1],
            executor=executor,
            byzantine=byzantine,
        )
        payload_msg.sig = self.signer.sign(payload_msg.signed_payload())
        self.run_ctrl_job(
            sign_cost(1),
            lambda: self.multicast(self.topo.coordinator.members, payload_msg),
        )

    def _complete(self, key: tuple[str, int]) -> None:
        """Task output fully verified: forward downstream ([P4])."""
        st = self._tasks[key]
        st.finished = True
        task_id = key[0]
        self._completed_tasks.add(task_id)
        if st.assignment is not None:
            t = st.assignment.task
            self._task_meta[task_id] = (t.tenant, t.submitted_at)
        self._retain(task_id, list(st.verified))
        self._forward_output(task_id, st.verified, st.seen_records)
        done = TaskCompleteMsg(
            task_id=task_id, attempt=key[1], count=st.seen_records
        )
        done.sig = self.signer.sign(done.signed_payload())
        self.multicast(self.topo.coordinator.members, done)
        # drop sibling attempts: first finished attempt wins
        for other_key, other in list(self._tasks.items()):
            if other_key[0] == task_id and other_key != key:
                self.cancel_timer(self._suspect_timer_name(other_key))
                other.failed = True

    def _retain(self, task_id: str, chunks: list[tuple[Chunk, bytes]]) -> None:
        self._retained[task_id] = chunks
        while len(self._retained) > self.config.retained_outputs:
            self._retained.popitem(last=False)

    def _forward_output(
        self,
        task_id: str,
        chunks: list[tuple[Chunk, bytes]],
        total: int,
        force_leader: bool = False,
    ) -> None:
        """Leader sends ⟨C, σ(C)⟩; everyone else sends σ(C) only."""
        leader = self.is_leader or force_leader
        if leader and self._faulty("negligent_leader"):
            return
        tenant, submitted_at = self._task_meta.get(task_id, ("", 0.0))
        outputs = self.topo.outputs_for(tenant)
        for chunk, sigma in chunks:
            if self._faulty("bogus_digest"):
                sigma = digest(["bogus", chunk.task_id, chunk.index])
            for op in outputs:
                if leader:
                    self.send(
                        op,
                        VerifiedChunkMsg(
                            vp_index=self.cluster.index,
                            task_id=task_id,
                            index=chunk.index,
                            final=chunk.final,
                            chunk=chunk,
                            digest=sigma,
                            total_records=total,
                            tenant=tenant,
                            submitted_at=submitted_at,
                        ),
                    )
                else:
                    self.send(
                        op,
                        VerifiedDigestMsg(
                            vp_index=self.cluster.index,
                            task_id=task_id,
                            index=chunk.index,
                            final=chunk.final,
                            digest=sigma,
                            total_records=total,
                            tenant=tenant,
                            submitted_at=submitted_at,
                        ),
                    )

    # ------------------------------------------------- speculative timeouts
    def _suspect_timer_name(self, key: tuple[str, int]) -> str:
        return f"suspect-{key[0]}-{key[1]}"

    def _arm_suspect_timer(self, key: tuple[str, int]) -> None:
        # "the timeout duration for a given task is increased using
        # exponential backoff" (Sec 5.2.2): double per attempt AND per
        # firing, so queueing delays cannot cause reassignment storms
        fires = self._suspect_fires.get(key, 0)
        timeout = self.config.suspect_timeout * (
            2 ** min(key[1] + fires, 10)
        )
        self.set_timer(
            self._suspect_timer_name(key), timeout, self._on_suspect_timeout, key
        )

    def _on_suspect_timeout(self, key: tuple[str, int]) -> None:
        st = self._tasks.get(key)
        if st is None or st.failed or st.finished:
            return
        self._suspect_fires[key] = self._suspect_fires.get(key, 0) + 1
        self._accuse(key, byzantine=False)
        # keep watching: the executor may still finish and win the race
        self._arm_suspect_timer(key)

    # ------------------------------------------- negligent leader handling
    def on_NegligentLeaderReport(self, msg: NegligentLeaderReport) -> None:
        if msg.vp_index != self.cluster.index or self._faulty("silent"):
            return
        if msg.sender in self._byzantine_ops:
            return
        reported = self._op_reported_leaders.setdefault(msg.sender, set())
        leader = self.cluster.leader_at(msg.term)
        if leader in reported:
            return  # duplicate report about the same leader: no new vote
        reported.add(leader)
        if len(reported) >= self.cluster.quorum:
            # an OP that reported f+1 distinct leaders must be Byzantine
            # (at most f verifiers here are faulty, Sec 5.2.2)
            self._byzantine_ops.add(msg.sender)
            return
        self._vote_elect(self.term + 1)

    def _vote_elect(self, new_term: int) -> None:
        vote = LeaderElectMsg(vp_index=self.cluster.index, new_term=new_term)
        vote.sig = self.signer.sign(vote.signed_payload())
        self.multicast(self.cluster.members, vote)
        self._record_elect(self.pid, new_term)

    def on_LeaderElectMsg(self, msg: LeaderElectMsg) -> None:
        if msg.vp_index != self.cluster.index or self._faulty("silent"):
            return
        if msg.sender not in self.cluster.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(msg.signed_payload(), msg.sig):
            return
        self._record_elect(msg.sender, msg.new_term)

    def _record_elect(self, pid: str, new_term: int) -> None:
        if new_term <= self.term:
            return
        votes = self._elect_votes.setdefault(new_term, set())
        votes.add(pid)
        if len(votes) >= self.cluster.quorum:
            self.term = new_term
            self._elect_votes = {
                t: v for t, v in self._elect_votes.items() if t > new_term
            }
            self.emit(
                LeaderElection(
                    time=self.now,
                    pid=self.pid,
                    vp_index=self.cluster.index,
                    term=new_term,
                )
            )
            if self.is_leader:
                # the new leader re-sends retained verified outputs so OP
                # obtains the chunk data the negligent leader withheld
                for task_id, chunks in self._retained.items():
                    total = sum(len(c.records) for c, _ in chunks)
                    self._forward_output(
                        task_id, chunks, total, force_leader=True
                    )

    # -------------------------------------------- equivocation recovery
    def on_EquivocationReport(self, msg: EquivocationReport) -> None:
        """OP saw ≥1 but <f+1 digests: re-share the chunk (Sec 5.2.2)."""
        if msg.vp_index != self.cluster.index or self._faulty("silent"):
            return
        self.emit(
            EquivocationReported(
                time=self.now,
                pid=self.pid,
                task_id=msg.task_id,
                index=msg.index,
            )
        )
        # Re-share our *verified* chunk for that index even when the OP's
        # quoted digest differs — a Byzantine leader may have fed the OP a
        # bogus digest, and receivers validate any share against their own
        # non-equivocable σ(C) regardless.
        for key, st in self._tasks.items():
            if key[0] != msg.task_id or st.assignment is None:
                continue
            for chunk, sigma in st.verified:
                if chunk.index == msg.index:
                    quorum = self.topo.coordinator.quorum
                    share = ChunkShareMsg(
                        task_id=key[0],
                        attempt=key[1],
                        index=chunk.index,
                        chunk=chunk,
                        assignment=st.assignment,
                        assignment_sigs=tuple(st.sigs.values())[:quorum],
                    )
                    others = [
                        p for p in self.cluster.members if p != self.pid
                    ]
                    if others:
                        self.multicast(others, share)
                    return

    def on_ChunkShareMsg(self, msg: ChunkShareMsg) -> None:
        """Fellow verifier re-shared a chunk: process it as if it came
        from the original executor."""
        if msg.sender not in self.cluster.members or self._faulty("silent"):
            return
        if msg.chunk is None or msg.assignment is None:
            return
        key = (msg.task_id, msg.attempt)
        st = self._tasks.get(key)
        if st is None or st.finished:
            return
        expected = st.expected_digests.get(msg.index)
        if expected is None or expected[1] != digest(msg.chunk):
            return  # only accept shares matching the executor's own σ(C)
        if st.failed:
            # The executor equivocated *at us* (its plain-channel chunk
            # mismatched the non-equivocable σ(C)); the executor stays
            # accused, but the re-shared chunk matches σ(C), so we can
            # still verify and forward the correct output (Sec 5.2.2:
            # "processes C as if it were sent from the original
            # executor").  Rebuild a clean verification state.
            st = _VerState(
                assignment=st.assignment,
                sigs=st.sigs,
                activated=False,
                count=st.count,
                count_started=st.count_started,
                expected_digests=st.expected_digests,
            )
            self._tasks[key] = st
            if st.assignment is not None and len(st.sigs) >= (
                self.topo.coordinator.quorum
            ):
                self._activate(key)
        if msg.index in st.raw_chunks or msg.index < st.next_index:
            return
        relabeled = ChunkMsg(
            chunk=msg.chunk,
            assignment=msg.assignment,
            assignment_sigs=msg.assignment_sigs,
        )
        relabeled.sender = msg.assignment.executor
        if not st.activated:
            # same rule as on_ChunkMsg: no activation below the f+1 bar
            if self.registry.verify_quorum(
                msg.assignment.signed_payload(),
                list(msg.assignment_sigs),
                set(self.topo.coordinator.members),
                self.topo.coordinator.quorum,
            ):
                if st.assignment is None:
                    st.assignment = msg.assignment
                elif (
                    st.assignment.signed_payload()
                    != msg.assignment.signed_payload()
                ):
                    return
                self._activate(key)
        st.raw_chunks.setdefault(msg.index, relabeled)
        if st.activated:
            self._pump(key)

    # ------------------------------------------------------- role switching
    def _send_load_report(self) -> None:
        """Periodic utilization report to VP_CO (the Sec 5.3 signal)."""
        interval = self.config.role_switch_interval
        self.set_timer("load-report", interval, self._send_load_report)
        if self._faulty("silent"):
            return
        busy = self.cpu.busy_seconds
        util = min(
            1.0,
            (busy - self._last_busy_snapshot)
            / (interval * self.cpu.cores),
        )
        self._last_busy_snapshot = busy
        pending = sum(
            len(st.raw_chunks)
            for st in self._tasks.values()
            if not st.finished and not st.failed
        )
        from repro.core.messages import VerifierLoadReport

        report = VerifierLoadReport(
            vp_index=self.cluster.index,
            utilization=util,
            pending_chunks=pending,
        )
        self.multicast(self.topo.coordinator.members, report)

    def on_RoleSwitchMsg(self, msg: RoleSwitchMsg) -> None:
        if msg.vp_index != self.cluster.index:
            return
        if msg.sender not in self.topo.coordinator.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(msg.signed_payload(), msg.sig):
            return
        votes = self._role_votes.setdefault((msg.epoch, msg.to_executor), set())
        votes.add(msg.sender)
        if (
            len(votes) >= self.topo.coordinator.quorum
            and msg.epoch > self.role_epoch
        ):
            self.role_epoch = msg.epoch
            self.executor_mode = msg.to_executor

    # --------------------------------------------------- liveness fallback
    def on_FallbackExecuteMsg(self, msg: FallbackExecuteMsg) -> None:
        """Lemma 6.4 worst case: the sub-cluster executes the task itself
        and skips straight to [P4]."""
        if msg.vp_index != self.cluster.index or self._faulty("silent"):
            return
        if msg.sender not in self.topo.coordinator.members:
            return
        if msg.sig is None or msg.sig.signer != msg.sender:
            return
        if not self.registry.verify(msg.signed_payload(), msg.sig):
            return
        task = msg.task
        if task is None or task.task_id in self._fallback_done:
            return
        votes = self._fallback_votes.setdefault(task.task_id, {})
        votes[msg.sender] = msg.sig
        if len(votes) < self.topo.coordinator.quorum:
            return
        self._fallback_done.add(task.task_id)
        self.store.when_ready(
            task.timestamp, lambda: self._fallback_execute(task)
        )

    def _fallback_execute(self, task) -> None:
        if self.crashed:
            return
        self._task_meta[task.task_id] = (task.tenant, task.submitted_at)
        view = self.store.view(task.timestamp)
        result = self.app.compute(view, task)
        chunks = chunk_records(
            task.task_id, list(result.records), self.config.chunk_bytes
        )
        pairs = [(c, digest(c)) for c in chunks]
        total = len(result.records)
        self.run_job(
            result.cost, self._fallback_emit, task.task_id, pairs, total
        )

    def _fallback_emit(self, task_id: str, pairs, total: int) -> None:
        self._completed_tasks.add(task_id)
        self._retain(task_id, pairs)
        self._forward_output(task_id, pairs, total)
