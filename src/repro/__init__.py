"""OsirisBFT reproduction (PPoPP '24).

A verification-based Byzantine fault tolerant processing architecture for
distributed task-parallel analytics, rebuilt in Python on a deterministic
discrete-event simulation of the paper's testbed.  See ``DESIGN.md`` for
the system inventory and ``EXPERIMENTS.md`` for paper-vs-measured results.

Public entry points:

* :mod:`repro.core` — the OsirisBFT architecture (deploy via
  :func:`repro.core.cluster.build_osiris_cluster`).
* :mod:`repro.baselines` — ZFT and RCP comparison systems.
* :mod:`repro.apps` — Anomaly Detection, Motion Planning, Video Analysis.
* :mod:`repro.bench` — scenario harness regenerating every paper figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
