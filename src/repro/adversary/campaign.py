"""Declarative Byzantine campaign vocabulary.

A :class:`Campaign` is a *value*: a frozen, hashable, JSON-serializable
adversary schedule.  It composes the fault strategies of
:mod:`repro.core.faults` three ways:

* **Phases** — time-scheduled: at simulated time ``at``, apply a batch of
  :class:`Action`\\ s (set / clear / swap strategies on process selectors).
  Coordinated group attacks are just phases whose selector matches many
  processes ("all executors equivocate in the same epoch").
* **Triggers** — adaptive: subscribe to the :mod:`repro.obs` bus and
  react to protocol events ("when my chunk is accepted, start omitting";
  "when a leader election fires, the new leader turns negligent").
* **Selectors** — role- or topology-level targeting, resolved against the
  deployment's :class:`~repro.net.topology.Topology` at application time
  (see :func:`resolve_selector`).

Campaigns carry no live objects, so they plug directly into
:class:`repro.exp.spec.Point` (sweepable, content-addressed-cacheable)
and :mod:`repro.check.fuzz` (randomized generation with shrinking).
uBFT and the verified-log line of work both stress that adversary
*schedules*, not just fault types, decide whether recovery paths are
exercised — the campaign is the schedule made first-class.

Selector grammar
----------------
========================= ==============================================
selector                  resolves to
========================= ==============================================
``e0`` / any exact pid    that process
``executors``             every EP member
``verifiers``             every verifier (coordinators included)
``coordinators``          the VP_CO members
``outputs``               every OP
``cluster:<i>``           members of verifier sub-cluster ``i``
``<multi>[a:b]``          Python slice of any multi-selector above,
                          e.g. ``executors[:5]``, ``cluster:1[:2]``
``event:<field>``         (triggers only) the value of ``<field>`` on
                          the triggering event, e.g. ``event:pid``,
                          ``event:culprit``, ``event:executor``
``event:new-leader``      (triggers only) the leader elected by a
                          ``leader-election`` event
========================= ==============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from repro.core.faults import FAULT_REGISTRIES, make_fault
from repro.errors import AdversaryError

__all__ = [
    "FaultSpec",
    "Action",
    "Phase",
    "Trigger",
    "Campaign",
    "resolve_selector",
]

_SCALARS = (str, int, float, bool, type(None))


def _kv(params: Mapping[str, Any] | Sequence | None) -> tuple[tuple[str, Any], ...]:
    """Normalize params to a sorted, hashable, JSON-scalar kv-tuple."""
    if not params:
        return ()
    items = dict(params)
    out = []
    for key in sorted(items):
        value = items[key]
        if not isinstance(value, _SCALARS):
            raise AdversaryError(
                f"campaign param {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        out.append((str(key), value))
    return tuple(out)


# ------------------------------------------------------------------ pieces
@dataclass(frozen=True)
class FaultSpec:
    """One named fault strategy: role registry + kind + constructor kv."""

    role: str
    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        registry = FAULT_REGISTRIES.get(self.role)
        if registry is None:
            raise AdversaryError(
                f"unknown fault role {self.role!r}; expected one of "
                f"{sorted(FAULT_REGISTRIES)}"
            )
        if self.kind not in registry:
            raise AdversaryError(
                f"unknown {self.role} fault {self.kind!r}; "
                f"registered: {sorted(registry)}"
            )
        object.__setattr__(self, "params", _kv(self.params))

    def build(self):
        """Fresh strategy instance (never shared across targets)."""
        return make_fault(self.role, self.kind, dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {
            "role": self.role,
            "kind": self.kind,
            "params": [list(p) for p in self.params],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            role=d["role"],
            kind=d["kind"],
            params=tuple((k, v) for k, v in d.get("params", ())),
        )


@dataclass(frozen=True)
class Action:
    """Set or clear a fault strategy on every process a selector matches.

    ``op`` is ``"set"`` (install/swap — installing over an existing
    strategy *is* the swap) or ``"clear"`` (restore honest behaviour).
    ``fault`` is required for ``set`` and must be absent for ``clear``.
    """

    op: str
    select: str
    fault: FaultSpec | None = None

    def __post_init__(self) -> None:
        if self.op not in ("set", "clear"):
            raise AdversaryError(f"unknown action op {self.op!r}")
        if self.op == "set" and self.fault is None:
            raise AdversaryError("set action needs a fault spec")
        if self.op == "clear" and self.fault is not None:
            raise AdversaryError("clear action must not carry a fault spec")
        if not self.select:
            raise AdversaryError("action needs a selector")

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"op": self.op, "select": self.select}
        if self.fault is not None:
            d["fault"] = self.fault.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Action":
        fault = d.get("fault")
        return cls(
            op=d["op"],
            select=d["select"],
            fault=FaultSpec.from_dict(fault) if fault is not None else None,
        )


@dataclass(frozen=True)
class Phase:
    """A batch of actions applied at one simulated time."""

    at: float
    actions: tuple[Action, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise AdversaryError(f"phase time must be >= 0, got {self.at}")
        object.__setattr__(self, "actions", tuple(self.actions))
        if not self.actions:
            raise AdversaryError("phase needs at least one action")

    def to_dict(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "name": self.name,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Phase":
        return cls(
            at=d["at"],
            actions=tuple(Action.from_dict(a) for a in d["actions"]),
            name=d.get("name", ""),
        )


@dataclass(frozen=True)
class Trigger:
    """Adaptive rule: when a matching protocol event fires, apply actions.

    ``on`` is a trace-event ``kind`` (e.g. ``"chunk-accepted"``,
    ``"leader-election"``, ``"task-assigned"`` — see
    :mod:`repro.obs.events`).  ``where`` is a kv-tuple of event-field
    equality filters (``(("pid", "e0"),)`` matches only events whose
    ``pid`` is ``e0``).  ``once=True`` disarms the trigger after the
    first match; ``after`` delays the actions by simulated seconds
    (0 applies them synchronously, *during* the triggering emission).
    Action selectors may use the ``event:`` forms to target processes
    named by the triggering event itself.
    """

    on: str
    actions: tuple[Action, ...]
    where: tuple[tuple[str, Any], ...] = ()
    once: bool = True
    after: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))
        object.__setattr__(self, "where", _kv(self.where))
        if not self.actions:
            raise AdversaryError("trigger needs at least one action")
        if self.after < 0:
            raise AdversaryError(f"trigger delay must be >= 0, got {self.after}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "on": self.on,
            "name": self.name,
            "where": [list(p) for p in self.where],
            "once": self.once,
            "after": self.after,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Trigger":
        return cls(
            on=d["on"],
            actions=tuple(Action.from_dict(a) for a in d["actions"]),
            where=tuple((k, v) for k, v in d.get("where", ())),
            once=d.get("once", True),
            after=d.get("after", 0.0),
            name=d.get("name", ""),
        )


@dataclass(frozen=True)
class Campaign:
    """A full adversary schedule: timed phases plus adaptive triggers."""

    name: str
    phases: tuple[Phase, ...] = ()
    triggers: tuple[Trigger, ...] = ()
    #: free-form note for reports ("Fig 7a: all executors fail at t=45s")
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        object.__setattr__(self, "triggers", tuple(self.triggers))

    # ------------------------------------------------------------- queries
    @property
    def empty(self) -> bool:
        return not self.phases and not self.triggers

    def first_injection(self) -> float | None:
        """Earliest *scheduled* destructive action time (``set`` in a
        phase), the reference point for recovery metrics.  ``None`` when
        the campaign is purely adaptive (the engine then records the
        first applied action's time at runtime)."""
        times = [
            p.at
            for p in self.phases
            if any(a.op == "set" for a in p.actions)
        ]
        return min(times) if times else None

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "note": self.note,
            "phases": [p.to_dict() for p in self.phases],
            "triggers": [t.to_dict() for t in self.triggers],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Campaign":
        return cls(
            name=d["name"],
            phases=tuple(Phase.from_dict(p) for p in d.get("phases", ())),
            triggers=tuple(
                Trigger.from_dict(t) for t in d.get("triggers", ())
            ),
            note=d.get("note", ""),
        )

    def to_json(self) -> str:
        """Canonical frozen form (sorted keys, no whitespace) — the cache
        identity used when a campaign rides inside an exp point."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        try:
            return cls.from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError) as exc:
            raise AdversaryError(f"malformed campaign JSON: {exc}") from exc

    def with_name(self, name: str) -> "Campaign":
        return replace(self, name=name)


# ---------------------------------------------------------------- selectors
def _slice(expr: str) -> tuple[str, slice | None]:
    """Split ``base[a:b]`` into (base, slice); no suffix → (expr, None)."""
    if not expr.endswith("]") or "[" not in expr:
        return expr, None
    base, _, tail = expr.rpartition("[")
    body = tail[:-1]
    if ":" not in body:
        raise AdversaryError(
            f"selector slice must be a range, got [{body}] in {expr!r}"
        )
    lo_s, _, hi_s = body.partition(":")
    try:
        lo = int(lo_s) if lo_s else None
        hi = int(hi_s) if hi_s else None
    except ValueError as exc:
        raise AdversaryError(f"bad selector slice in {expr!r}") from exc
    return base, slice(lo, hi)


def resolve_selector(select: str, topo, event=None) -> tuple[str, ...]:
    """Resolve a selector expression to target pids (see module doc).

    ``event`` enables the ``event:*`` forms; passing one outside a
    trigger context is an error the caller enforces.
    """
    if select.startswith("event:"):
        if event is None:
            raise AdversaryError(
                f"selector {select!r} is only valid inside a trigger"
            )
        field_name = select[len("event:"):]
        if field_name == "new-leader":
            vp_index = getattr(event, "vp_index", None)
            term = getattr(event, "term", None)
            if vp_index is None or term is None:
                raise AdversaryError(
                    f"event:new-leader needs vp_index/term, "
                    f"but {event.kind!r} has neither"
                )
            return (topo.cluster(vp_index).leader_at(term),)
        value = getattr(event, field_name, None)
        if not isinstance(value, str) or not value:
            raise AdversaryError(
                f"event field {field_name!r} of {event.kind!r} is not a pid"
            )
        return (value,)

    base, sl = _slice(select)
    if base == "executors":
        pids: tuple[str, ...] = tuple(topo.executor_pids)
    elif base == "verifiers":
        pids = topo.all_verifier_pids()
    elif base == "coordinators":
        pids = tuple(topo.coordinator.members)
    elif base == "outputs":
        pids = tuple(topo.output_pids)
    elif base.startswith("cluster:"):
        try:
            index = int(base[len("cluster:"):])
        except ValueError as exc:
            raise AdversaryError(f"bad cluster selector {select!r}") from exc
        pids = tuple(topo.cluster(index).members)
    else:
        if sl is not None:
            raise AdversaryError(f"cannot slice single-pid selector {select!r}")
        if base not in topo.all_pids():
            raise AdversaryError(f"selector {select!r} names no process")
        return (base,)
    return pids[sl] if sl is not None else pids
