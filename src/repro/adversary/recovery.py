"""Per-campaign robustness metrics, computed from the trace.

The :class:`RecoverySink` is a passive bus sink (same pattern as the
:mod:`repro.check` checkers — it never schedules and never consumes
RNG): it watches the task/fault streams plus the campaign engine's own
``adversary`` events and, after the run, distils them into a
:class:`RecoveryReport` — the quantities Fig 7a eyeballs, made exact:

* **detection latency** — first ``FaultDetected`` after the injection;
* **reassignment latency** — first ``TaskReassigned`` after it;
* **goodput dip** — depth (fraction of pre-fault throughput lost at the
  worst complete bin) and duration (seconds spent below the recovery
  threshold);
* **time-to-recover** — first sustained return to ≥90% of the pre-fault
  throughput;
* **safety verdict** — the sanitizer's violation count, which must stay
  zero under *every* campaign (the paper's "safe even if all executors
  are Byzantine" claim, checked rather than assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.bus import Sink
from repro.obs.events import (
    CATEGORY_ADVERSARY,
    CATEGORY_FAULT,
    CATEGORY_TASK,
    AdversaryAction,
    FaultDetected,
    LeaderElection,
    RecordsAccepted,
    RoleSwitch,
    TaskReassigned,
    TraceEvent,
)

__all__ = ["RecoverySink", "RecoveryReport", "RECOVERY_FRACTION"]

#: "Recovered" means sustained throughput at or above this fraction of
#: the pre-fault level (the paper's Fig 7a recovers to ~half capacity —
#: of the *cluster*; the threshold here is relative to what the scenario
#: itself sustained before the injection).
RECOVERY_FRACTION = 0.9


@dataclass
class RecoveryReport:
    """Robustness metrics of one campaign run (all times in simulated s).

    ``None`` means "not applicable / never happened": a campaign that
    injects at t=0 has no pre-fault window, an all-clear campaign never
    detects anything, a run cut short may never recover.
    """

    campaign: str
    injected_at: Optional[float]
    detection_latency: Optional[float]
    reassignment_latency: Optional[float]
    pre_throughput: Optional[float]
    dip_throughput: Optional[float]
    dip_depth: Optional[float]
    dip_duration: Optional[float]
    recovered_at: Optional[float]
    time_to_recover: Optional[float]
    detections: int
    reassignments: int
    role_switches: int
    elections: int
    actions_applied: int
    records_accepted: int
    sanitizer_violations: Optional[int]

    @property
    def safe(self) -> Optional[bool]:
        """Sanitizer verdict: ``True`` iff it ran and found nothing."""
        if self.sanitizer_violations is None:
            return None
        return self.sanitizer_violations == 0

    @property
    def recovered(self) -> bool:
        return self.recovered_at is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.campaign,
            "injected_at": self.injected_at,
            "detection_latency": self.detection_latency,
            "reassignment_latency": self.reassignment_latency,
            "pre_throughput": self.pre_throughput,
            "dip_throughput": self.dip_throughput,
            "dip_depth": self.dip_depth,
            "dip_duration": self.dip_duration,
            "recovered_at": self.recovered_at,
            "time_to_recover": self.time_to_recover,
            "detections": self.detections,
            "reassignments": self.reassignments,
            "role_switches": self.role_switches,
            "elections": self.elections,
            "actions_applied": self.actions_applied,
            "records_accepted": self.records_accepted,
            "sanitizer_violations": self.sanitizer_violations,
            "safe": self.safe,
            "recovered": self.recovered,
        }

    def summary(self) -> str:
        def fmt(x, unit="s"):
            return "-" if x is None else f"{x:.2f}{unit}"

        lines = [
            f"campaign {self.campaign!r}: "
            f"{self.actions_applied} adversary action(s), "
            f"{self.records_accepted} records accepted",
            f"  injected at       {fmt(self.injected_at)}",
            f"  detection latency {fmt(self.detection_latency)} "
            f"({self.detections} detections)",
            f"  reassignment lat. {fmt(self.reassignment_latency)} "
            f"({self.reassignments} reassignments, "
            f"{self.role_switches} role switches, "
            f"{self.elections} elections)",
            f"  goodput dip       {fmt(self.dip_depth, '')} of "
            f"{fmt(self.pre_throughput, ' rec/s')} for "
            f"{fmt(self.dip_duration)}",
            f"  time to recover   {fmt(self.time_to_recover)} "
            f"(to ≥{RECOVERY_FRACTION:.0%} of pre-fault)",
        ]
        if self.sanitizer_violations is None:
            lines.append("  safety            not sanitized")
        else:
            verdict = "SAFE" if self.safe else "VIOLATED"
            lines.append(
                f"  safety            {verdict} "
                f"({self.sanitizer_violations} sanitizer violations)"
            )
        return "\n".join(lines)


class RecoverySink(Sink):
    """Accumulates the raw observations a :class:`RecoveryReport` needs."""

    categories = frozenset(
        {CATEGORY_TASK, CATEGORY_FAULT, CATEGORY_ADVERSARY}
    )

    def __init__(self, bin_seconds: float = 1.0) -> None:
        self.bin_seconds = bin_seconds
        self.records_accepted = 0
        self._bins: dict[int, int] = {}
        self.injected_at: Optional[float] = None
        self.actions_applied = 0
        self._first_detection: Optional[float] = None
        self._first_reassignment: Optional[float] = None
        self.detections = 0
        self.reassignments = 0
        self.role_switches = 0
        self.elections = 0

    # ------------------------------------------------------------------ sink
    def handle(self, event: TraceEvent) -> None:
        if isinstance(event, RecordsAccepted):
            self.records_accepted += event.count
            idx = int(event.time // self.bin_seconds)
            self._bins[idx] = self._bins.get(idx, 0) + event.count
        elif isinstance(event, AdversaryAction):
            self.actions_applied += 1
            if event.op == "set" and self.injected_at is None:
                self.injected_at = event.time
        elif isinstance(event, FaultDetected):
            self.detections += 1
            if (
                self.injected_at is not None
                and event.time >= self.injected_at
                and self._first_detection is None
            ):
                self._first_detection = event.time
        elif isinstance(event, TaskReassigned):
            self.reassignments += 1
            if (
                self.injected_at is not None
                and event.time >= self.injected_at
                and self._first_reassignment is None
            ):
                self._first_reassignment = event.time
        elif isinstance(event, RoleSwitch):
            self.role_switches += 1
        elif isinstance(event, LeaderElection):
            self.elections += 1

    # ---------------------------------------------------------------- report
    def _rate(self, idx: int) -> float:
        return self._bins.get(idx, 0) / self.bin_seconds

    def report(
        self,
        campaign: str = "",
        until: Optional[float] = None,
        sanitizer_violations: Optional[int] = None,
    ) -> RecoveryReport:
        """Distil the run into a :class:`RecoveryReport`.

        ``until`` bounds the analysis to complete bins (pass the final
        simulated time; the trailing partial bin is ignored).
        """
        t0 = self.injected_at
        pre = dip = depth = dip_duration = recovered_at = ttr = None
        if t0 is not None:
            inject_bin = int(t0 // self.bin_seconds)
            # pre-fault throughput: mean over complete bins before the
            # injection, with the leading warmup (empty bins) dropped
            pre_idx = [i for i in range(inject_bin) if self._rate(i) > 0]
            if pre_idx:
                start = pre_idx[0]
                span = inject_bin - start
                total = sum(
                    self._bins.get(i, 0) for i in range(start, inject_bin)
                )
                pre = total / (span * self.bin_seconds) if span > 0 else None
            if pre:
                last_bin = (
                    int(until // self.bin_seconds) - 1
                    if until is not None
                    else (max(self._bins) if self._bins else inject_bin)
                )
                post = list(range(inject_bin + 1, last_bin + 1))
                if post:
                    dip = min(self._rate(i) for i in post)
                    depth = max(0.0, 1.0 - dip / pre)
                    threshold = RECOVERY_FRACTION * pre
                    below = 0
                    for j, i in enumerate(post):
                        if self._rate(i) >= threshold:
                            nxt = post[j + 1] if j + 1 < len(post) else None
                            sustained = (
                                nxt is None or self._rate(nxt) >= threshold
                            )
                            if sustained and recovered_at is None:
                                recovered_at = i * self.bin_seconds
                        else:
                            below += 1
                    dip_duration = below * self.bin_seconds
                    if recovered_at is not None:
                        ttr = recovered_at - t0
        return RecoveryReport(
            campaign=campaign,
            injected_at=t0,
            detection_latency=(
                self._first_detection - t0
                if t0 is not None and self._first_detection is not None
                else None
            ),
            reassignment_latency=(
                self._first_reassignment - t0
                if t0 is not None and self._first_reassignment is not None
                else None
            ),
            pre_throughput=pre,
            dip_throughput=dip,
            dip_depth=depth,
            dip_duration=dip_duration,
            recovered_at=recovered_at,
            time_to_recover=ttr,
            detections=self.detections,
            reassignments=self.reassignments,
            role_switches=self.role_switches,
            elections=self.elections,
            actions_applied=self.actions_applied,
            records_accepted=self.records_accepted,
            sanitizer_violations=sanitizer_violations,
        )
