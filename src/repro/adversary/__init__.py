"""Declarative Byzantine campaign engine (see :mod:`repro.adversary.campaign`).

Compose fault strategies into time-scheduled phases and adaptive
bus-driven triggers, run them against any deployment via
:mod:`repro.api`, and score robustness with :class:`RecoverySink`.
"""

from repro.adversary.campaign import (
    Action,
    Campaign,
    FaultSpec,
    Phase,
    Trigger,
    resolve_selector,
)
from repro.adversary.engine import CampaignController, install_campaign
from repro.adversary.library import BUILTIN
from repro.adversary.recovery import (
    RECOVERY_FRACTION,
    RecoveryReport,
    RecoverySink,
)

__all__ = [
    "Action",
    "BUILTIN",
    "Campaign",
    "CampaignController",
    "FaultSpec",
    "Phase",
    "RECOVERY_FRACTION",
    "RecoveryReport",
    "RecoverySink",
    "Trigger",
    "install_campaign",
    "resolve_selector",
]
