"""Campaign execution: bind a frozen :class:`Campaign` to a deployment.

The :class:`CampaignController` is an *active* component — unlike every
other bus consumer it exists to perturb the run.  It stays deterministic
the same way the rest of the substrate does: phase boundaries are plain
simulator events (scheduled at install time, fired in timestamp/seq
order), adaptive triggers react synchronously from the emitting call
site in attach order, and nothing consumes RNG.  Same campaign + same
seed ⇒ bit-identical traces (pinned by the golden campaign fixture).

Faults are applied through the exact per-role injection points the
static ``faults=`` mapping uses — ``ExecutionEngine.fault`` for
executor behaviours, ``Verifier.fault`` / ``OutputProcess.fault`` for
the rest — so a campaign can do anything a deployment-time mapping can,
plus activate / deactivate / swap it at any simulated time or protocol
event.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Optional

from repro.adversary.campaign import Action, Campaign, Phase, Trigger, resolve_selector
from repro.errors import AdversaryError
from repro.obs import events as _events
from repro.obs.bus import Sink
from repro.obs.events import (
    CATEGORY_ADVERSARY,
    AdversaryAction,
    AdversaryPhase,
    AdversaryTrigger,
    TraceEvent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deploy import OsirisCluster

__all__ = [
    "CampaignController",
    "KIND_CATEGORIES",
    "apply_action_to_core",
    "install_campaign",
]


def _kind_categories() -> dict[str, str]:
    """Trace-event ``kind`` → category, scanned once from the vocabulary."""
    out: dict[str, str] = {}
    for name in _events.__all__:
        obj = getattr(_events, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, TraceEvent)
            and obj is not TraceEvent
        ):
            out[obj.kind] = obj.category
    return out


#: kind → category for every event in :mod:`repro.obs.events`.
KIND_CATEGORIES: dict[str, str] = _kind_categories()


class _TriggerSink(Sink):
    """Routes matching protocol events to the controller's triggers."""

    def __init__(self, controller: "CampaignController") -> None:
        self.controller = controller
        self.categories = frozenset(
            KIND_CATEGORIES[t.on] for t in controller.campaign.triggers
        )

    def handle(self, event: TraceEvent) -> None:
        self.controller._on_event(event)


class CampaignController:
    """Runs one campaign against one built (not yet started) deployment."""

    def __init__(self, campaign: Campaign, cluster: "OsirisCluster") -> None:
        self.campaign = campaign
        self.cluster = cluster
        self.sim = cluster.sim
        self.topo = cluster.topo
        self.bus = cluster.bus
        #: (time, op, target pid, role, fault kind) — every applied action
        self.applied: list[tuple[float, str, str, str, str]] = []
        #: time of the first destructive (``set``) action actually applied
        self.first_injection_at: Optional[float] = None
        self._armed: list[Trigger] = []
        self._sink: Optional[_TriggerSink] = None
        self._installed = False
        for trigger in campaign.triggers:
            if trigger.on not in KIND_CATEGORIES:
                raise AdversaryError(
                    f"trigger {trigger.name or trigger.on!r} watches unknown "
                    f"event kind {trigger.on!r}"
                )

    # ------------------------------------------------------------- install
    def install(self) -> "CampaignController":
        """Schedule every phase and arm every trigger.  Call after the
        cluster is built and before it is started."""
        if self._installed:
            raise AdversaryError("campaign already installed")
        self._installed = True
        for phase in self.campaign.phases:
            if phase.at <= self.sim.now:
                self._apply_phase(phase)
            else:
                self.sim.schedule_at(phase.at, self._apply_phase, phase)
        if self.campaign.triggers:
            self._armed = list(self.campaign.triggers)
            self._sink = _TriggerSink(self)
            self.bus.attach(self._sink)
        return self

    # -------------------------------------------------------------- phases
    def _apply_phase(self, phase: Phase) -> None:
        if self.bus.wants(CATEGORY_ADVERSARY):
            self.bus.emit(
                AdversaryPhase(
                    time=self.sim.now,
                    pid="adversary",
                    campaign=self.campaign.name,
                    phase=phase.name or f"t={phase.at:g}",
                )
            )
        for action in phase.actions:
            self._apply_action(action)

    # ------------------------------------------------------------ triggers
    def _on_event(self, event: TraceEvent) -> None:
        if not self._armed:
            return
        still_armed: list[Trigger] = []
        fired: list[Trigger] = []
        for trigger in self._armed:
            if event.kind == trigger.on and self._matches(trigger, event):
                fired.append(trigger)
                if not trigger.once:
                    still_armed.append(trigger)
            else:
                still_armed.append(trigger)
        if not fired:
            return
        self._armed = still_armed
        for trigger in fired:
            if self.bus.wants(CATEGORY_ADVERSARY):
                self.bus.emit(
                    AdversaryTrigger(
                        time=self.sim.now,
                        pid="adversary",
                        campaign=self.campaign.name,
                        trigger=trigger.name or trigger.on,
                        on=trigger.on,
                    )
                )
            if trigger.after > 0:
                self.sim.schedule(
                    trigger.after, self._apply_trigger, trigger, event
                )
            else:
                self._apply_trigger(trigger, event)

    def _apply_trigger(self, trigger: Trigger, event: TraceEvent) -> None:
        for action in trigger.actions:
            self._apply_action(action, event)

    @staticmethod
    def _matches(trigger: Trigger, event: TraceEvent) -> bool:
        return all(
            getattr(event, key, None) == value for key, value in trigger.where
        )

    # ------------------------------------------------------------- actions
    def _apply_action(self, action: Action, event: TraceEvent | None = None) -> None:
        pids = resolve_selector(action.select, self.topo, event)
        for pid in pids:
            applied_role = self._apply_to(pid, action)
            kind = action.fault.kind if action.fault is not None else ""
            self.applied.append(
                (self.sim.now, action.op, pid, applied_role, kind)
            )
            if action.op == "set" and self.first_injection_at is None:
                self.first_injection_at = self.sim.now
            if self.bus.wants(CATEGORY_ADVERSARY):
                self.bus.emit(
                    AdversaryAction(
                        time=self.sim.now,
                        pid="adversary",
                        campaign=self.campaign.name,
                        op=action.op,
                        target=pid,
                        role=applied_role,
                        fault=kind,
                    )
                )

    def _apply_to(self, pid: str, action: Action) -> str:
        """Install/clear the strategy on ``pid``'s injection point."""
        return apply_action_to_core(
            self.cluster.worker(pid), self.topo, pid, action
        )


def apply_action_to_core(core, topo, pid: str, action: Action) -> str:
    """Install/clear one action's strategy on ``pid``'s injection point.

    Shared by the DES :class:`CampaignController` (which holds every core
    in-process) and the live backend (where each child process applies
    the action to its own core on receipt of a control envelope).
    Returns the role label the action landed on.
    """
    if action.op == "clear":
        # honest again: clear every injection point the process carries
        # (Executor exposes ``fault`` as a read-only view of its
        # engine's, so only the engine slot is written there)
        cleared = []
        engine = getattr(core, "engine", None)
        if engine is not None:
            if engine.fault is not None:
                cleared.append("executor")
            engine.fault = None
        if not isinstance(getattr(type(core), "fault", None), property):
            if getattr(core, "fault", None) is not None:
                cleared.append(
                    "output" if pid in topo.output_pids else "verifier"
                )
                core.fault = None
        return "+".join(cleared) or "none"
    spec = action.fault
    strategy = spec.build()
    if spec.role == "executor":
        engine = getattr(core, "engine", None)
        if engine is None:
            raise AdversaryError(
                f"{pid} has no execution engine for executor fault "
                f"{spec.kind!r} (selector {action.select!r})"
            )
        engine.fault = strategy
    elif spec.role == "verifier":
        if pid not in topo.all_verifier_pids():
            raise AdversaryError(
                f"{pid} is not a verifier (fault {spec.kind!r}, "
                f"selector {action.select!r})"
            )
        core.fault = strategy
    else:  # output
        if pid not in topo.output_pids:
            raise AdversaryError(
                f"{pid} is not an output process (fault {spec.kind!r}, "
                f"selector {action.select!r})"
            )
        core.fault = strategy
    return spec.role


def install_campaign(campaign: Campaign, cluster) -> CampaignController:
    """Convenience: build a controller and install it in one call."""
    return CampaignController(campaign, cluster).install()
