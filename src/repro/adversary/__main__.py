"""CLI: ``python -m repro.adversary {list,show,run,matrix}``.

Subcommands
-----------
``list``
    The built-in campaign library with one-line descriptions.
``show``
    Print a campaign (built-in name or JSON file) in its canonical
    serialized form — pipe to a file, edit, feed back to ``run``.
``run``
    Deploy one campaign against an OsirisBFT cluster (sanitized by
    default) and print the scenario row plus the recovery report.
    Exits 1 on sanitizer violations.
``matrix``
    The attack matrix: every selected campaign against the same
    deployment, one table row each.  Exits 1 if any campaign violates
    safety — this is the CI smoke job.

All runs go through :class:`repro.api.DeploymentSpec`, same as the
benchmarks, the sweep engine and the fuzz driver.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

from repro.adversary.campaign import Campaign
from repro.adversary.library import BUILTIN
from repro.errors import ReproError


def _load_campaign(
    ref: str, at: float | None = None, lenient: bool = False
) -> Campaign:
    """Resolve a built-in name (optionally re-timed via ``at``) or a
    JSON file path to a campaign.  ``lenient`` keeps the factory default
    when it takes no ``at`` (the matrix re-times what it can)."""
    factory = BUILTIN.get(ref)
    if factory is not None:
        if at is not None:
            if "at" not in inspect.signature(factory).parameters:
                if not lenient:
                    raise ReproError(
                        f"campaign {ref!r} does not take an --at override"
                    )
                return factory()
            return factory(at=at)
        return factory()
    path = Path(ref)
    if path.is_file():
        return Campaign.from_json(path.read_text())
    raise ReproError(
        f"unknown campaign {ref!r}: not a built-in "
        f"({', '.join(sorted(BUILTIN))}) and not a JSON file"
    )


def _config(pairs: list[str]) -> tuple:
    """Parse repeated ``--config key=value`` overrides (JSON values,
    bare strings accepted)."""
    out = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise ReproError(f"--config expects key=value, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return tuple(sorted(out.items()))


def _spec(campaign: Campaign, args: argparse.Namespace, sanitize: bool):
    from repro import api

    return api.DeploymentSpec(
        workload="anomaly",
        workload_params=(
            ("n_tasks", args.tasks),
            ("profile", args.profile),
            ("rate", args.rate),
        ),
        n=args.n,
        k=getattr(args, "k", None),
        seed=args.seed,
        deadline=args.deadline,
        duration=args.duration,
        config=_config(args.config),
        faults=campaign,
        sanitize=sanitize,
        label=campaign.name,
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in BUILTIN)
    for name, factory in BUILTIN.items():
        print(f"{name:<{width}}  {factory().note}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args.campaign, at=args.at)
    print(json.dumps(campaign.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import api

    campaign = _load_campaign(args.campaign, at=args.at)
    result = api.run(_spec(campaign, args, sanitize=not args.no_sanitize))
    print(result.row())
    report = result.extra.get("recovery_report")
    if report is not None:
        print(report.summary())
    return 1 if (result.sanitizer_violations or 0) else 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro import api

    names = args.campaigns or sorted(BUILTIN)
    header = (
        f"{'campaign':<18} {'records':>8} {'detect':>8} {'reassign':>9} "
        f"{'recover':>8} {'safety':>9}"
    )
    print(header)
    print("-" * len(header))
    ok = True

    def fmt(x):
        return "-" if x is None else f"{x:.2f}s"

    for name in names:
        campaign = _load_campaign(name, at=args.at, lenient=True)
        result = api.run(_spec(campaign, args, sanitize=True))
        report = result.extra["recovery_report"]
        if not report.safe:
            ok = False
        print(
            f"{name:<18} {report.records_accepted:>8} "
            f"{fmt(report.detection_latency):>8} "
            f"{fmt(report.reassignment_latency):>9} "
            f"{fmt(report.time_to_recover):>8} "
            f"{'SAFE' if report.safe else 'VIOLATED':>9}"
        )
    if not ok:
        print("\nsafety violations detected", file=sys.stderr)
    return 0 if ok else 1


def _deploy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=8, help="worker count")
    parser.add_argument(
        "--k", type=int, default=None, help="verifier sub-cluster count"
    )
    parser.add_argument(
        "--profile", default="MM", help="anomaly workload profile"
    )
    parser.add_argument(
        "--tasks", type=int, default=60, help="workload task count"
    )
    parser.add_argument(
        "--rate", type=float, default=2000.0, help="task arrival rate (/s)"
    )
    parser.add_argument("--seed", type=int, default=0, help="DES seed")
    parser.add_argument(
        "--deadline", type=float, default=600.0, help="drain deadline (sim s)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="fixed-duration streaming instead of drain-to-completion",
    )
    parser.add_argument(
        "--at",
        type=float,
        default=None,
        help="re-time built-in campaigns (first phase injection)",
    )
    parser.add_argument(
        "--config",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="OsirisConfig override (repeatable), e.g. suspect_timeout=2.0",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.adversary",
        description="Declarative Byzantine campaigns against OsirisBFT.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="built-in campaign library")
    lst.set_defaults(fn=_cmd_list)

    show = sub.add_parser("show", help="print a campaign's canonical JSON")
    show.add_argument("campaign", help="built-in name or JSON file")
    show.add_argument(
        "--at", type=float, default=None, help="re-time a built-in campaign"
    )
    show.set_defaults(fn=_cmd_show)

    run = sub.add_parser("run", help="run one campaign, print recovery")
    run.add_argument("campaign", help="built-in name or JSON file")
    _deploy_args(run)
    run.add_argument(
        "--no-sanitize",
        action="store_true",
        help="skip the substrate sanitizer (defaults to on)",
    )
    run.set_defaults(fn=_cmd_run)

    matrix = sub.add_parser(
        "matrix", help="attack matrix: campaigns x one deployment"
    )
    matrix.add_argument(
        "campaigns",
        nargs="*",
        help="built-in names (default: the whole library)",
    )
    _deploy_args(matrix)
    # fixed-duration streaming (campaigns that deliberately destroy
    # liveness still finish and still get a safety verdict), with tasks
    # arriving throughout the window so recovery is measurable
    matrix.set_defaults(fn=_cmd_matrix, duration=40.0, tasks=240, rate=8.0)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
