"""Built-in campaigns: the paper's attacks plus the adaptive classics.

Each factory returns a frozen :class:`~repro.adversary.campaign.Campaign`
with sensible defaults; the :data:`BUILTIN` registry maps names to
zero-argument factories for the CLI (``python -m repro.adversary list``)
and the attack-matrix benchmarks.
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.campaign import (
    Action,
    Campaign,
    FaultSpec,
    Phase,
    Trigger,
)

__all__ = [
    "fig7a",
    "mass_equivocation",
    "silent_minority",
    "negligent_cluster",
    "slow_then_recover",
    "turncoat",
    "coup",
    "BUILTIN",
]


def _set(select: str, role: str, kind: str, **params) -> Action:
    return Action(
        op="set",
        select=select,
        fault=FaultSpec(role=role, kind=kind, params=tuple(params.items())),
    )


def fig7a(at: float = 45.0, kind: str = "corrupt-record") -> Campaign:
    """Fig 7a: *every* executor turns Byzantine at ``at`` seconds — each
    corrupts the final record of its next output to cause a mismatch.
    The system must detect, blacklist, reassign, and recover on verifier
    fallback capacity alone."""
    return Campaign(
        name="fig7a",
        note=f"all executors fail at t={at:g}s ({kind})",
        phases=(
            Phase(
                at=at,
                name="all-executors-fail",
                actions=(_set("executors", "executor", kind),),
            ),
        ),
    )


def mass_equivocation(at: float = 10.0) -> Campaign:
    """Coordinated group attack: every executor equivocates over the
    plain channel in the same epoch.  The non-equivocating primitive must
    make this detectable without ever accepting mismatched output."""
    return Campaign(
        name="mass-equivocation",
        note=f"all executors equivocate from t={at:g}s",
        phases=(
            Phase(
                at=at,
                name="equivocate",
                actions=(_set("executors", "executor", "equivocate-chunks"),),
            ),
        ),
    )


def silent_minority(at: float = 10.0, count: int = 2) -> Campaign:
    """``count`` executors go silent together — the speculative
    reassignment (Sec 5.2.2) workload."""
    return Campaign(
        name="silent-minority",
        note=f"{count} executors go silent at t={at:g}s",
        phases=(
            Phase(
                at=at,
                name="silence",
                actions=(_set(f"executors[:{count}]", "executor", "silent"),),
            ),
        ),
    )


def negligent_cluster(at: float = 10.0, index: int = 0, f: int = 1) -> Campaign:
    """``f`` verifiers of one sub-cluster turn negligent together — the
    maximum the 2f+1 sizing tolerates; quorums must still form."""
    return Campaign(
        name="negligent-cluster",
        note=f"{f} verifier(s) of cluster {index} negligent from t={at:g}s",
        phases=(
            Phase(
                at=at,
                name="negligence",
                actions=(
                    _set(
                        f"cluster:{index}[:{f}]",
                        "verifier",
                        "silent-verifier",
                    ),
                ),
            ),
        ),
    )


def slow_then_recover(
    at: float = 10.0, until: float = 30.0, count: int = 2, delay: float = 5.0
) -> Campaign:
    """Grey failure with remission: ``count`` executors turn
    pathologically slow at ``at`` and honest again at ``until`` —
    exercises the ``clear`` path and the slow × speculative-reassignment
    race (duplicate attempts racing to acceptance)."""
    select = f"executors[:{count}]"
    return Campaign(
        name="slow-then-recover",
        note=f"{count} slow executors in [{at:g}, {until:g})s",
        phases=(
            Phase(
                at=at,
                name="slowdown",
                actions=(_set(select, "executor", "slow", delay=delay),),
            ),
            Phase(
                at=until,
                name="remission",
                actions=(Action(op="clear", select=select),),
            ),
        ),
    )


def turncoat(target: str = "e0") -> Campaign:
    """Adaptive: ``target`` behaves honestly until the first chunk is
    accepted (building trust), then starts omitting records."""
    return Campaign(
        name="turncoat",
        note=f"{target} omits records once output is being accepted",
        triggers=(
            Trigger(
                on="chunk-accepted",
                name="betray",
                once=True,
                actions=(_set(target, "executor", "omit-record"),),
            ),
        ),
    )


def coup(at: float = 10.0, index: int = 0) -> Campaign:
    """Adaptive: the leader of sub-cluster ``index`` turns negligent;
    when the resulting leader election fires, the *new* leader turns
    negligent too.  Over-budget for f=1 by construction — liveness may
    suffer, safety must not."""
    return Campaign(
        name="coup",
        note=f"successive negligent leaders in cluster {index}",
        phases=(
            Phase(
                at=at,
                name="first-negligence",
                actions=(
                    _set(f"cluster:{index}[:1]", "verifier", "negligent-leader"),
                ),
            ),
        ),
        triggers=(
            Trigger(
                on="leader-election",
                name="corrupt-successor",
                where=(("vp_index", index),),
                once=True,
                actions=(
                    _set("event:new-leader", "verifier", "negligent-leader"),
                ),
            ),
        ),
    )


#: Campaign name → zero-argument factory with default parameters.
BUILTIN: dict[str, Callable[[], Campaign]] = {
    "fig7a": fig7a,
    "mass-equivocation": mass_equivocation,
    "silent-minority": silent_minority,
    "negligent-cluster": negligent_cluster,
    "slow-then-recover": slow_then_recover,
    "turncoat": turncoat,
    "coup": coup,
}
