"""Exception hierarchy for the OsirisBFT reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class NetworkError(ReproError):
    """Invalid use of the simulated network (unknown node, bad payload...)."""


class CryptoError(ReproError):
    """Signature/digest failures that indicate incorrect *library* use.

    Note: a signature that fails to *verify* is not an error — it is a
    legitimate runtime outcome the protocols must handle — so verification
    returns ``False`` rather than raising.  This exception covers misuse,
    e.g. signing with an unregistered key.
    """


class ConsensusError(ReproError):
    """Protocol-violating use of the consensus module by local code."""


class StoreError(ReproError):
    """Multiversioned store misuse (e.g. non-monotonic update timestamps)."""


class ProtocolError(ReproError):
    """A *correct* process detected an internal invariant violation.

    Byzantine behaviour from remote processes never raises — it is handled
    by the verification protocols.  ``ProtocolError`` signals a bug in local
    protocol state, and is used liberally in assertions guarding invariants.
    """


class ApplicationError(ReproError):
    """An application implementation violated the verifiable-application API."""


class BenchmarkError(ReproError):
    """Benchmark harness misconfiguration."""


class ObservabilityError(ReproError):
    """Invalid use of the trace-event bus or one of its sinks."""


class AdversaryError(ReproError):
    """Malformed adversary campaign (unknown selector, fault kind, trigger
    event, unserializable parameter) or invalid use of the campaign engine."""


class ReplayError(ReproError):
    """A captured inbox log cannot be replayed against the given core
    (missing continuation, malformed log line, undecodable message)."""


class LiveError(ReproError):
    """Live OS-process backend failure: a child died or failed its
    ready/start handshake, a queue hop carried an undecodable payload,
    or the deployment requests a feature the live backend cannot host
    (trigger campaigns, replay capture)."""


class ServeError(ReproError):
    """Serving-gateway failure: a malformed, truncated or oversized
    client frame, a protocol violation on a client connection (submit
    before hello, unexpected frame type), or invalid use of the gateway
    lifecycle."""
