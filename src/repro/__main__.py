"""Unified CLI: ``python -m repro <subcommand> [args...]``.

One dispatcher over the per-subsystem CLIs — each subcommand forwards
the remaining argv to that package's ``main()``:

=========  ====================================================
bench      paper figures, traces, kernel micro-benchmarks
adversary  fault campaigns: run one, or the whole attack matrix
check      sanitizer / conservation audits over a spec
live       OS-process runs and DES-vs-live cross-validation
mc         bounded interleaving exploration over the pure cores
serve      TCP gateway over a live deployment + serving bench
=========  ====================================================

The per-module invocations (``python -m repro.bench`` etc.) keep
working and stay the documented spelling in older scripts; this
dispatcher is sugar over exactly the same entry points, with the shared
``--json`` / ``--out`` output conventions of each sub-CLI unchanged.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional


def _bench(argv) -> int:
    from repro.bench.cli import main

    return main(argv)


def _adversary(argv) -> int:
    from repro.adversary.__main__ import main

    return main(argv)


def _check(argv) -> int:
    from repro.check.__main__ import main

    return main(argv)


def _live(argv) -> int:
    from repro.live.__main__ import main

    return main(argv)


def _mc(argv) -> int:
    from repro.mc.__main__ import main

    return main(argv)


def _serve(argv) -> int:
    from repro.serve.__main__ import main

    return main(argv)


_COMMANDS: dict[str, tuple[Callable, str]] = {
    "bench": (_bench, "paper figures, traces, kernel micro-benchmarks"),
    "adversary": (_adversary, "fault campaigns and the attack matrix"),
    "check": (_check, "sanitizer / conservation audits"),
    "live": (_live, "OS-process runs and cross-validation"),
    "mc": (_mc, "bounded interleaving exploration"),
    "serve": (_serve, "TCP gateway over a live deployment"),
}


def _usage() -> str:
    lines = ["usage: python -m repro <command> [args...]", "", "commands:"]
    for name, (_, help_text) in _COMMANDS.items():
        lines.append(f"  {name:<10} {help_text}")
    lines.append("")
    lines.append("run 'python -m repro <command> --help' for command options")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0 if argv else 2
    name, rest = argv[0], argv[1:]
    entry = _COMMANDS.get(name)
    if entry is None:
        print(f"unknown command {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    return entry[0](rest)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
