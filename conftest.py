"""Pytest root conftest.

Ensures ``src/`` is importable even when the package has not been
installed (the offline environment lacks ``wheel``, so
``pip install -e .`` requires ``--no-build-isolation``; see README).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
