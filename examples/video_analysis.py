#!/usr/bin/env python
"""Video Analysis — time-based analytics over a streaming feed.

Frames stream in as state updates; every few frames a clustering task
computes pixel clusters over the recent window (segmentation / motion
detection for security cameras, Sec 7).  This is the paper's Sec 4.1
case (ii): update tasks and computation tasks are decoupled.

Verifiers check the *optimality* of reported centroids in one pass
(each centroid must be the mean of the pixels assigned to it), so a
compromised camera-analytics node cannot report fabricated clusters.

Run:  python examples/video_analysis.py
"""

from repro.apps.video import VideoApp, frame_stream, make_cluster_task, make_frame_task
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import FabricateRecordFault


def main() -> None:
    app = VideoApp()

    # 24 frames at ~30 fps with a clustering task every 6 frames
    workload = []
    t = 0.0
    computes = 0
    for i, frame in enumerate(frame_stream(24, points_per_frame=300, seed=21)):
        workload.append((t, make_frame_task(i, frame)))
        t += 1 / 30
        if i >= 4 and i % 6 == 5:
            workload.append((t, make_cluster_task(computes, k=6, window=4)))
            computes += 1
            t += 1 / 30

    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=10,
        k=2,
        seed=22,
        config=OsirisConfig(f=1, chunk_bytes=16384, suspect_timeout=0.5),
        executor_faults={"e3": FabricateRecordFault()},  # fake clusters
    )
    cluster.start()
    cluster.run(until=60.0)

    m = cluster.metrics
    print(f"frames ingested:        {cluster.executors[0].store.applied_ts}")
    print(f"clustering tasks done:  {m.tasks_completed} / {computes}")
    print(f"cluster records:        {m.records_accepted} "
          f"(expected {computes * 6})")
    print(f"fabrications detected:  {len(m.faults_detected)}")

    assert m.tasks_completed == computes
    assert m.records_accepted == computes * 6
    print("\nOK: only Lloyd-stable clusterings reached the consumer.")


if __name__ == "__main__":
    main()
