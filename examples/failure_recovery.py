#!/usr/bin/env python
"""Failure recovery — the Fig 7a scenario at example scale.

A cluster processes a steady task stream; at t=15s **every executor
turns Byzantine simultaneously** and corrupts its output.  OsirisBFT's
safety guarantee doesn't depend on executors at all: verifiers detect
the corruption, the coordinator blacklists the culprits, and dynamic
role-switching converts verifier sub-clusters into executors so
throughput recovers instead of collapsing to zero.

Run:  python examples/failure_recovery.py
"""

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import CorruptRecordFault

FAIL_AT = 15.0


def main() -> None:
    app = SyntheticApp(records_per_task=6, compute_cost=80e-3)
    workload = [(i * 0.05, make_compute_task(i)) for i in range(600)]

    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=13,
        k=3,
        seed=33,
        config=OsirisConfig(
            f=1,
            suspect_timeout=1.0,
            role_switching=True,
            role_switch_interval=0.5,
            switch_patience=2,
            switch_cooldown=2,
            cores_per_node=1,
        ),
        executor_faults={
            f"e{i}": CorruptRecordFault(activate_at=FAIL_AT) for i in range(4)
        },
    )
    cluster.start()
    cluster.run(until=90.0)

    m = cluster.metrics
    series = m.throughput_series()
    print("throughput trace (records/sec):")
    for t, v in series:
        bar = "#" * int(v / 5)
        marker = "  <-- all executors fail" if abs(t - FAIL_AT) < 0.5 else ""
        print(f"  t={t:5.0f}s {v:8.0f} {bar}{marker}")

    last = max(m.completion_times)
    before = m.throughput(5.0, FAIL_AT)
    after = m.throughput(FAIL_AT + 3.0, max(last, FAIL_AT + 4.0))
    print(f"\nthroughput before failure: {before:8.0f} rec/s")
    print(f"throughput after recovery: {after:8.0f} rec/s")
    print(f"faults detected:  {len(m.faults_detected)}")
    print(f"role switches:    {m.role_switches}")
    print(f"blacklisted:      {sorted(cluster.coordinators[0].blacklist)}")

    assert len(m.faults_detected) > 0
    assert after > 0, "system must keep making progress"
    assert m.records_accepted == m.tasks_completed * 6
    print("\nOK: recovered by switching verifiers into the executor role.")


if __name__ == "__main__":
    main()
