#!/usr/bin/env python
"""Writing your own verifiable application, end to end.

The OsirisBFT programming model (paper Sec 4) asks an application for
the ⟨U, A⟩ pair plus three verification operators.  This example builds
a miniature *search index* from scratch:

* **state (U)** — documents stream in; every replica maintains the
  document store and an inverted index, multiversioned;
* **computation (A)** — a query task returns every document containing
  the query term, as sorted records;
* **is_valid** — re-check that the claimed document exists at this
  version and contains the term (cheap: one lookup);
* **happens_before** — document-id order (the default key order);
* **output_size** — the posting-list length from the inverted index —
  O(1), which is what makes omission detectable without re-running the
  search.

Byzantine executors hide one matching document from their results; the
verifiers' count check exposes it.

Run:  python examples/custom_application.py
"""

from bisect import bisect_right

from repro.core import (
    ComputeResult,
    CountResult,
    Opcode,
    OsirisConfig,
    Record,
    Task,
    VerifiableApplication,
    build_osiris_cluster,
)
from repro.core.faults import OmitRecordFault
from repro.store.state_machine import VersionedState


class IndexState(VersionedState):
    """Multiversioned document store + inverted index."""

    def __init__(self):
        self._docs: dict[int, tuple[int, frozenset]] = {}  # id -> (ts, terms)
        self._postings: dict[str, tuple[list, list]] = {}  # term -> (ts[], ids[])

    def apply(self, ts, payload):
        doc_id, text = payload
        terms = frozenset(text.split())
        self._docs[doc_id] = (ts, terms)
        for term in terms:
            tss, ids = self._postings.setdefault(term, ([], []))
            tss.append(ts)
            ids.append(doc_id)
        return 1e-6 * len(terms)

    def snapshot(self, ts):
        return IndexView(self, ts)


class IndexView:
    """Read view pinned at a version."""

    def __init__(self, state, ts):
        self._state = state
        self.ts = ts

    def postings(self, term):
        tss, ids = self._state._postings.get(term, ([], []))
        visible = ids[: bisect_right(tss, self.ts)]
        return sorted(set(visible))

    def doc_has_term(self, doc_id, term):
        entry = self._state._docs.get(doc_id)
        return entry is not None and entry[0] <= self.ts and term in entry[1]


class SearchApp(VerifiableApplication):
    """The ⟨U, A⟩ + operators bundle for the search index."""

    name = "search-index"

    def initial_state(self):
        return IndexState()

    def valid_task(self, task):
        if task.opcode.has_update:
            payload = task.update_payload
            if not (isinstance(payload, tuple) and len(payload) == 2):
                return False
        if task.opcode.has_compute:
            if not isinstance(task.compute_payload, str):
                return False
        return True

    def compute(self, view, task):
        term = task.compute_payload
        matches = view.postings(term)
        records = tuple(
            Record(key=(doc_id,), data=term, size_bytes=32)
            for doc_id in matches
        )
        # cost: model a scan over the posting list
        return ComputeResult(records=records, cost=2e-3 + 1e-4 * len(matches))

    def is_valid(self, view, record, task):
        return (
            len(record.key) == 1
            and record.data == task.compute_payload
            and view.doc_has_term(record.key[0], task.compute_payload)
        )

    def output_size(self, view, task):
        # O(1)-ish from the index: this is the omission detector
        return CountResult(count=len(view.postings(task.compute_payload)), cost=1e-5)


DOCS = [
    "the quick brown fox",
    "byzantine generals problem",
    "quick sort and merge sort",
    "fox hunting is banned",
    "byzantine fault tolerant analytics",
    "a quick byzantine fox",
]


def main():
    workload = []
    t = 0.0
    for i, text in enumerate(DOCS):
        workload.append(
            (t, Task(task_id=f"doc{i}", opcode=Opcode.UPDATE,
                     update_payload=(i, text), size_bytes=64))
        )
        t += 0.01
    for i, term in enumerate(["quick", "byzantine", "fox", "sort"]):
        workload.append(
            (t, Task(task_id=f"q{i}", opcode=Opcode.COMPUTE,
                     compute_payload=term, size_bytes=32))
        )
        t += 0.01

    cluster = build_osiris_cluster(
        SearchApp(),
        workload=iter(workload),
        n_workers=10,
        k=2,
        seed=5,
        config=OsirisConfig(f=1, suspect_timeout=0.5),
        executor_faults={f"e{i}": OmitRecordFault() for i in range(4)},
    )
    cluster.start()
    cluster.run(until=30.0)

    m = cluster.metrics
    expected_hits = sum(
        sum(1 for d in DOCS if term in d.split())
        for term in ["quick", "byzantine", "fox", "sort"]
    )
    print(f"queries answered:  {m.tasks_completed} / 4")
    print(f"hits delivered:    {m.records_accepted} (expected {expected_hits})")
    print(f"omissions caught:  "
          f"{sum(1 for _, k, _ in m.faults_detected if k == 'count-mismatch')}")
    assert m.tasks_completed == 4
    assert m.records_accepted == expected_hits
    print("\nOK: a ~100-line application gets BFT analytics for free.")


if __name__ == "__main__":
    main()
