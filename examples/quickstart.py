#!/usr/bin/env python
"""Quickstart: a minimal OsirisBFT deployment in ~60 lines.

Builds a 10-worker cluster (two verifier sub-clusters of 3, four
executors), streams 50 computation tasks through it — one of the
executors is Byzantine and corrupts its output — and shows that every
task still completes with exactly the correct records delivered, while
the faulty executor is detected and blacklisted.

Run:  python examples/quickstart.py
"""

from repro.apps.synthetic import SyntheticApp, make_compute_task
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import CorruptRecordFault


def main() -> None:
    # 1. A verifiable application: ⟨U, A⟩ plus the three verification
    #    operators (is_valid / happens_before / output_size).  The
    #    synthetic app produces 8 deterministic records per task.
    app = SyntheticApp(records_per_task=8, compute_cost=10e-3)

    # 2. A workload: (submit_time, Task) pairs.
    workload = [(i * 0.01, make_compute_task(i)) for i in range(50)]

    # 3. The cluster: n_workers split into k verifier sub-clusters of
    #    2f+1 (the first is the coordinator VP_CO) plus executors.
    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=10,
        k=2,
        seed=42,
        config=OsirisConfig(f=1, suspect_timeout=0.5),
        executor_faults={"e0": CorruptRecordFault()},  # a Byzantine executor
    )

    # 4. Run the simulation.
    cluster.start()
    cluster.run(until=60.0)

    # 5. Inspect the outcome.
    m = cluster.metrics
    print(f"tasks completed:    {m.tasks_completed} / 50")
    print(f"records delivered:  {m.records_accepted} (expected {50 * 8})")
    print(f"mean task latency:  {m.mean_latency() * 1e3:.1f} ms")
    print(f"faults detected:    {len(m.faults_detected)}")
    for when, kind, culprit in m.faults_detected[:3]:
        print(f"  t={when:.2f}s  {kind}  culprit={culprit}")
    print(f"reassignments:      {len(m.reassignments)}")
    blacklisted = cluster.coordinators[0].blacklist
    print(f"blacklisted:        {sorted(blacklisted)}")

    assert m.tasks_completed == 50
    assert m.records_accepted == 50 * 8  # no corrupt record ever accepted
    assert "e0" in blacklisted
    print("\nOK: all output verified correct despite the Byzantine executor.")


if __name__ == "__main__":
    main()
