#!/usr/bin/env python
"""Anomaly Detection — the paper's running use case (Fig 1).

A network graph receives a continuous stream of link updates; every
update triggers pattern matching around the new link to find anomalous
substructures (here: triangles closing around the link).  The state is
multiversioned, so concurrent tasks read consistent snapshots while
updates keep flowing.

One executor *omits* matches from its output — the cybersecurity threat
model where "a malicious process can hide suspicious records from
downstream analysis" (Sec 4.2).  The verifiers' outputSize check catches
it: the count of matches is computed independently and cheaply.

Run:  python examples/anomaly_detection.py
"""

from repro.apps.anomaly import (
    AnomalyApp,
    clique,
    link_update_stream,
    power_law_graph,
)
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import OmitRecordFault


def main() -> None:
    # the "network": a power-law graph, like real communication networks
    base = power_law_graph(n=200, m=5, seed=7)
    app = AnomalyApp(base, clique(3), step_cost=1e-5)

    # a stream of fresh links, biased toward dense regions
    workload = link_update_stream(base, n_tasks=40, rate=100, seed=8)

    cluster = build_osiris_cluster(
        app,
        workload=workload,
        n_workers=10,
        k=2,
        seed=9,
        config=OsirisConfig(f=1, chunk_bytes=4096, suspect_timeout=0.5),
        executor_faults={"e1": OmitRecordFault()},  # hides matches!
    )
    cluster.start()
    cluster.run(until=120.0)

    m = cluster.metrics
    print(f"link updates processed: {m.tasks_completed} / 40")
    print(f"anomalies reported:     {m.records_accepted}")
    print(f"omissions detected:     "
          f"{sum(1 for _, k, _ in m.faults_detected if k == 'count-mismatch')}")
    print(f"graph version at executors: "
          f"{cluster.executors[0].store.applied_ts}")

    # every replica converged to the same network version
    versions = {
        p.store.applied_ts
        for p in cluster.executors + cluster.all_verifiers
    }
    assert versions == {40}, versions
    assert m.tasks_completed == 40
    print("\nOK: all replicas consistent; hidden anomalies were recovered.")


if __name__ == "__main__":
    main()
