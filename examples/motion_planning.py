#!/usr/bin/env python
"""Motion Planning — batch MIP solving with verifiable optimality proofs.

Tasks are mixed-integer programs (routes for airplanes/robots, Sec 7);
executors solve them with branch and bound and attach an optimality or
infeasibility certificate to each result, like the paper's SCIP proof
logs.  Verifiers check certificates by weak duality — a tree walk of
dot products, no search — so a Byzantine solver cannot sneak a
suboptimal "solution" past them even though nobody re-runs the solve.

This example also demonstrates certificate checking directly, outside
the cluster.

Run:  python examples/motion_planning.py
"""

import numpy as np

from repro.apps.planning import (
    BranchAndBoundSolver,
    CertificateVerifier,
    PlanningApp,
    instance_suite,
    make_planning_task,
)
from repro.core import OsirisConfig, build_osiris_cluster
from repro.core.faults import CorruptRecordFault


def certificate_demo() -> None:
    """Solve one instance and try to cheat the verifier."""
    suite = instance_suite(count=4, seed=11)
    inst = suite[0]
    solver = BranchAndBoundSolver()
    checker = CertificateVerifier()

    result = solver.solve(inst)
    print(f"[{inst.name}] status={result.status} "
          f"objective={result.objective:.1f} "
          f"nodes={result.nodes_explored} lp_solves={result.lp_solves}")

    ok = checker.verify_optimal(
        inst, result.x, result.objective, result.certificate
    )
    print(f"honest certificate verifies: {ok.ok} "
          f"({ok.leaves_checked} leaves, {ok.lp_resolves} LP re-solves)")

    # cheat 1: claim a feasible-but-worse solution is optimal
    worse = np.zeros(inst.n_vars)
    cheat = checker.verify_optimal(
        inst, worse, inst.objective(worse), result.certificate
    )
    print(f"suboptimal claim rejected: {not cheat.ok} ({cheat.reason})")

    # cheat 2: claim an infeasible point
    bogus = checker.verify_optimal(
        inst, np.full(inst.n_vars, 99.0), result.objective, result.certificate
    )
    print(f"infeasible claim rejected:  {not bogus.ok} ({bogus.reason})")
    assert ok.ok and not cheat.ok and not bogus.ok


def cluster_demo() -> None:
    """Run the planning workload through a BFT cluster with a Byzantine
    solver that corrupts its answers."""
    suite = instance_suite(count=20, seed=11)
    app = PlanningApp(instances=suite, node_cost=1e-3)
    workload = [
        (i * 0.02, make_planning_task(i, i % len(suite))) for i in range(20)
    ]
    cluster = build_osiris_cluster(
        app,
        workload=iter(workload),
        n_workers=10,
        k=2,
        seed=12,
        config=OsirisConfig(f=1, chunk_bytes=65536, suspect_timeout=0.5),
        executor_faults={"e2": CorruptRecordFault()},
    )
    cluster.start()
    cluster.run(until=120.0)

    m = cluster.metrics
    print(f"\nMIPs solved & verified: {m.tasks_completed} / 20")
    print(f"corrupt proofs caught:  {len(m.faults_detected)}")
    assert m.tasks_completed == 20
    assert m.records_accepted == 20


if __name__ == "__main__":
    certificate_demo()
    cluster_demo()
    print("\nOK: optimality certificates make solver output verifiable.")
